"""The batched LkP training core: parity with the per-instance reference.

Three layers of guarantees:

1. every new batched autodiff primitive (stacked ``eigh`` eigenvalues,
   batched ``logdet_psd`` / ``trace`` / ``diag_embed`` / ``diagonal`` /
   ``gather_submatrices``) passes a finite-difference gradcheck;
2. the vectorized ESP recursion (``batched_esp_table``, leave-one-out
   gradients, ``batched_differentiable_log_esp``) matches the scalar
   Algorithm 1 path row for row;
3. the fused ``batch_loss`` reproduces the per-instance reference to
   within float64 round-off — loss and every parameter gradient — across
   variants, ``(k, n)`` geometries, and degenerate spectra.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradient, functional as F
from repro.data import GroundSetInstance
from repro.dpp import (
    batched_differentiable_log_esp,
    batched_esp_leave_one_out,
    batched_esp_table,
    batched_log_kdpp_probability,
    differentiable_log_esp,
    esp_leave_one_out,
    esp_table,
    log_kdpp_probability,
)
from repro.losses import LkPCriterion
from repro.models import MFRecommender


def _psd_stack(seed: int, batch: int, m: int, ridge: float = 0.5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, m, m))
    return x @ np.swapaxes(x, -1, -2) + ridge * np.eye(m)


def _normalized_kernel(seed: int, num_items: int) -> np.ndarray:
    kernel = _psd_stack(seed, 1, num_items, ridge=1.0)[0]
    diag = np.sqrt(np.diagonal(kernel))
    return kernel / np.outer(diag, diag)


def _make_batch(rng, num_items: int, k: int, n: int, batch: int, users: int = 4):
    out = []
    for b in range(batch):
        items = rng.choice(num_items, size=k + n, replace=False)
        out.append(
            GroundSetInstance(
                user=b % users, targets=items[:k], negatives=items[k:]
            )
        )
    return out


# ----------------------------------------------------------------------
# Gradchecks for the batched autodiff primitives
# ----------------------------------------------------------------------
def test_gradcheck_eigh_eigenvalues():
    a = _psd_stack(0, 2, 4)
    weights = np.linspace(0.5, 2.0, 4)

    def fn(x):
        eigenvalues, _ = F.eigh(x)
        return (eigenvalues * Tensor(weights)).sum()

    check_gradient(fn, a)


def test_eigh_symmetrizes_and_matches_numpy():
    rng = np.random.default_rng(1)
    raw = rng.normal(size=(3, 5, 5))
    eigenvalues, eigenvectors = F.eigh(Tensor(raw))
    sym = 0.5 * (raw + np.swapaxes(raw, -1, -2))
    expected_w, expected_u = np.linalg.eigh(sym)
    assert np.allclose(eigenvalues.data, expected_w)
    assert np.allclose(np.abs(eigenvectors), np.abs(expected_u))


def test_eigh_gradient_exact_for_degenerate_spectrum():
    # f = sum of eigenvalues = trace; its kernel gradient is the identity
    # even when every eigenvalue coincides.
    a = np.eye(4) * 2.0
    x = Tensor(a, requires_grad=True)
    eigenvalues, _ = F.eigh(x)
    eigenvalues.sum().backward()
    assert np.allclose(x.grad, np.eye(4))


def test_gradcheck_batched_logdet_psd():
    # Probe through x @ x^T so finite-difference perturbations stay in
    # the PSD cone (Cholesky reads only the lower triangle).
    rng = np.random.default_rng(2)
    x = rng.normal(size=(3, 4, 4))
    check_gradient(
        lambda t: F.logdet_psd(t @ t.mT + Tensor(0.5 * np.eye(4))).sum(), x
    )
    a = _psd_stack(2, 3, 4, ridge=1.0)
    batched = F.logdet_psd(Tensor(a))
    assert batched.shape == (3,)
    for b in range(3):
        assert np.isclose(batched.data[b], np.linalg.slogdet(a[b])[1], atol=1e-6)


def test_gradcheck_batched_trace_and_diagonal():
    a = _psd_stack(3, 2, 3)
    check_gradient(lambda x: F.trace(x @ x).sum(), a)
    check_gradient(lambda x: (F.diagonal(x) ** 2.0).sum(), a)
    assert np.allclose(
        F.trace(Tensor(a)).data, np.trace(a, axis1=-2, axis2=-1)
    )


def test_gradcheck_batched_diag_embed():
    rng = np.random.default_rng(4)
    v = rng.normal(size=(2, 4))
    weights = rng.normal(size=(2, 4, 4))
    check_gradient(lambda x: (F.diag_embed(x) * Tensor(weights)).sum(), v)


def test_gradcheck_gather_submatrices():
    a = _psd_stack(5, 2, 6)
    subsets = np.array([[0, 2, 4], [1, 1, 5]])  # includes a repeated index

    def fn(x):
        return (F.gather_submatrices(x, subsets) ** 2.0).sum()

    check_gradient(fn, a)


def test_gather_submatrices_values():
    a = _psd_stack(6, 3, 5)
    subsets = np.array([[0, 3], [4, 1], [2, 2]])
    gathered = F.gather_submatrices(Tensor(a), subsets)
    for b in range(3):
        assert np.allclose(
            gathered.data[b], a[b][np.ix_(subsets[b], subsets[b])]
        )


# ----------------------------------------------------------------------
# Batched ESP recursion vs the scalar Algorithm 1
# ----------------------------------------------------------------------
def test_batched_esp_table_matches_scalar():
    rng = np.random.default_rng(7)
    spectra = np.abs(rng.normal(size=(5, 8))) + 0.05
    table = batched_esp_table(spectra, 4)
    for b in range(5):
        assert np.allclose(table[b], esp_table(spectra[b], 4))


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_batched_esp_leave_one_out_matches_scalar(k):
    rng = np.random.default_rng(8)
    spectra = np.abs(rng.normal(size=(4, 8))) + 0.05
    out = batched_esp_leave_one_out(spectra, k)
    for b in range(4):
        assert np.allclose(out[b], esp_leave_one_out(spectra[b], k))


@pytest.mark.parametrize("k", [1, 3, 5])
def test_batched_log_esp_matches_per_instance(k):
    kernels = _psd_stack(9, 6, 7, ridge=1.0)
    stacked = Tensor(kernels, requires_grad=True)
    batched = batched_differentiable_log_esp(stacked, k)
    batched.sum().backward()
    for b in range(kernels.shape[0]):
        single = Tensor(kernels[b], requires_grad=True)
        value = differentiable_log_esp(single, k)
        value.backward()
        assert np.isclose(batched.data[b], value.item(), rtol=1e-12, atol=1e-12)
        assert np.allclose(stacked.grad[b], single.grad, rtol=1e-12, atol=1e-12)


def test_batched_log_esp_degenerate_spectrum():
    # An identity stack has an m-fold degenerate spectrum; the spectral
    # gradient identity must stay exact (and finite) there.
    kernels = np.broadcast_to(np.eye(6), (3, 6, 6)).copy()
    stacked = Tensor(kernels, requires_grad=True)
    batched = batched_differentiable_log_esp(stacked, 3)
    batched.sum().backward()
    single = Tensor(np.eye(6), requires_grad=True)
    differentiable_log_esp(single, 3).backward()
    for b in range(3):
        assert np.isclose(batched.data[b], np.log(20.0))  # C(6,3) = 20
        assert np.allclose(stacked.grad[b], single.grad, atol=1e-12)


def test_gradcheck_batched_log_esp():
    kernels = _psd_stack(10, 2, 5, ridge=1.0)
    check_gradient(
        lambda x: batched_differentiable_log_esp(x, 2).sum(), kernels
    )


def test_batched_log_esp_rejects_rank_deficient():
    kernels = np.zeros((2, 4, 4))
    kernels[0] = np.eye(4)  # second kernel has rank 0 < k
    with pytest.raises(FloatingPointError):
        batched_differentiable_log_esp(Tensor(kernels), 2)


# ----------------------------------------------------------------------
# Batched log k-DPP probability
# ----------------------------------------------------------------------
def test_batched_log_kdpp_probability_matches_per_instance():
    kernels = _psd_stack(11, 4, 6, ridge=1.0)
    subsets = np.array([[0, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]])
    stacked = Tensor(kernels, requires_grad=True)
    batched = batched_log_kdpp_probability(stacked, subsets, 3)
    batched.sum().backward()
    for b in range(4):
        single = Tensor(kernels[b], requires_grad=True)
        value = log_kdpp_probability(single, subsets[b], 3)
        value.backward()
        assert np.isclose(batched.data[b], value.item(), rtol=1e-12)
        assert np.allclose(stacked.grad[b], single.grad, rtol=1e-12, atol=1e-12)


def test_log_kdpp_probability_dispatches_on_stacked_kernel():
    kernels = _psd_stack(12, 2, 5, ridge=1.0)
    subsets = np.array([[0, 1], [2, 3]])
    via_dispatch = log_kdpp_probability(Tensor(kernels), subsets, 2)
    direct = batched_log_kdpp_probability(Tensor(kernels), subsets, 2)
    assert via_dispatch.shape == (2,)
    assert np.allclose(via_dispatch.data, direct.data)


# ----------------------------------------------------------------------
# Fused batch_loss vs the per-instance reference
# ----------------------------------------------------------------------
def _parity_case(criterion_kwargs, k, n, batch_size=6, num_items=40, dim=8):
    rng = np.random.default_rng(13)
    kernel = _normalized_kernel(14, num_items)
    if criterion_kwargs.get("kernel_mode") != "embedding":
        criterion_kwargs = {**criterion_kwargs, "diversity_kernel": kernel}
    batch = _make_batch(rng, num_items, k, n, batch_size)
    model = MFRecommender(4, num_items, dim=dim, rng=15)

    criterion = LkPCriterion(k=k, n=n, backend="batched", **criterion_kwargs)
    loss_batched = criterion.batch_loss(model, model.representations(), batch)
    loss_batched.backward()
    grads_batched = {
        name: p.grad.copy() for name, p in model.named_parameters()
    }

    model.zero_grad()
    loss_reference = criterion.batch_loss_reference(
        model, model.representations(), batch
    )
    loss_reference.backward()
    grads_reference = {
        name: p.grad.copy() for name, p in model.named_parameters()
    }
    return loss_batched, loss_reference, grads_batched, grads_reference


@pytest.mark.parametrize(
    "criterion_kwargs",
    [
        {},
        {"use_negative_set": True},
        {"kernel_mode": "embedding", "bandwidth": 1.3},
        {"kernel_mode": "embedding", "use_negative_set": True},
        {"normalization": "standard_dpp"},
    ],
    ids=["P", "NP", "PE", "NPE", "standard-dpp"],
)
def test_batch_loss_parity_variants(criterion_kwargs):
    batched, reference, gb, gr = _parity_case(criterion_kwargs, k=4, n=4)
    assert np.isclose(batched.item(), reference.item(), rtol=1e-10, atol=1e-10)
    for name in gr:
        assert np.allclose(gb[name], gr[name], rtol=1e-8, atol=1e-10), name


@pytest.mark.parametrize("k,n", [(2, 3), (5, 5), (3, 7), (2, 8)])
def test_batch_loss_parity_geometries(k, n):
    batched, reference, gb, gr = _parity_case({}, k=k, n=n)
    assert np.isclose(batched.item(), reference.item(), rtol=1e-10, atol=1e-10)
    for name in gr:
        assert np.allclose(gb[name], gr[name], rtol=1e-8, atol=1e-10), name


def test_batch_loss_parity_sigmoid_quality():
    rng = np.random.default_rng(16)
    kernel = _normalized_kernel(17, 30)
    batch = _make_batch(rng, 30, 3, 3, 5)
    model = MFRecommender(4, 30, dim=6, rng=18)
    model.quality_transform = "sigmoid"
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=kernel, backend="batched")
    batched = criterion.batch_loss(model, model.representations(), batch)
    batched.backward()
    gb = {name: p.grad.copy() for name, p in model.named_parameters()}
    model.zero_grad()
    reference = criterion.batch_loss_reference(
        model, model.representations(), batch
    )
    reference.backward()
    assert np.isclose(batched.item(), reference.item(), rtol=1e-10)
    for name, p in model.named_parameters():
        assert np.allclose(gb[name], p.grad, rtol=1e-8, atol=1e-10), name


def test_batch_loss_parity_degenerate_kernel():
    # Identity diversity kernel + tied scores => every ground-set kernel
    # has a maximally degenerate spectrum.  Parity must survive it.
    num_items = 20
    rng = np.random.default_rng(19)
    batch = _make_batch(rng, num_items, 3, 3, 4)
    model = MFRecommender(4, num_items, dim=5, rng=20)
    model.item_embedding.weight.data[:] = 0.0  # all scores identical
    criterion = LkPCriterion(
        k=3, n=3, diversity_kernel=np.eye(num_items), backend="batched"
    )
    batched = criterion.batch_loss(model, model.representations(), batch)
    batched.backward()
    gb = {name: p.grad.copy() for name, p in model.named_parameters()}
    model.zero_grad()
    reference = criterion.batch_loss_reference(
        model, model.representations(), batch
    )
    reference.backward()
    assert np.isfinite(batched.item())
    assert np.isclose(batched.item(), reference.item(), rtol=1e-10)
    for name, p in model.named_parameters():
        assert np.allclose(gb[name], p.grad, rtol=1e-8, atol=1e-10), name


def test_reference_backend_and_heterogeneous_fallback():
    rng = np.random.default_rng(21)
    kernel = _normalized_kernel(22, 30)
    model = MFRecommender(4, 30, dim=6, rng=23)
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=kernel, backend="batched")
    # A batch whose geometry disagrees with the criterion must not crash:
    # it silently routes through the reference loop.
    odd = _make_batch(rng, 30, 2, 4, 3)
    loss = criterion.batch_loss(model, model.representations(), odd)
    assert np.isfinite(loss.item())

    with pytest.raises(ValueError):
        LkPCriterion(k=3, n=3, diversity_kernel=kernel, backend="fused??")


def test_trainer_threads_loss_backend():
    from repro.data import movielens_like
    from repro.train import TrainConfig, Trainer

    dataset = movielens_like(scale=0.25).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    kernel = _normalized_kernel(24, dataset.num_items)
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=4, rng=1)
    criterion = LkPCriterion(k=2, n=2, diversity_kernel=kernel)
    assert criterion.backend == "batched"

    backends_seen = []
    original_reference = criterion.batch_loss_reference

    def recording_reference(*args, **kwargs):
        backends_seen.append(criterion.backend)
        return original_reference(*args, **kwargs)

    criterion.batch_loss_reference = recording_reference
    config = TrainConfig(
        epochs=1, batch_size=8, patience=0, eval_every=2,
        loss_backend="reference",
    )
    Trainer(model, criterion, split, config).fit()
    # The override applied during training and was restored afterwards.
    assert backends_seen and set(backends_seen) == {"reference"}
    assert criterion.backend == "batched"

    with pytest.raises(ValueError):
        TrainConfig(loss_backend="nope")
