"""Tests for diversity-pair mining (Eq. 3 training data)."""

import numpy as np
import pytest

from repro.data import (
    greedy_diverse_subset,
    mine_diversity_pairs,
    monotonous_subset,
    movielens_like,
)


def _categories():
    return [
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({0, 1}),
        frozenset({0}),
        frozenset({0}),
    ]


def test_greedy_diverse_subset_maximizes_coverage():
    categories = _categories()
    items = np.arange(6)
    chosen = greedy_diverse_subset(items, categories, 3)
    covered = set().union(*(categories[i] for i in chosen))
    assert covered == {0, 1, 2}


def test_greedy_diverse_subset_size_validation():
    with pytest.raises(ValueError):
        greedy_diverse_subset(np.arange(2), _categories()[:2], 3)


def test_monotonous_subset_low_coverage():
    categories = _categories()
    items = np.arange(6)
    chosen = monotonous_subset(items, categories, 3)
    covered = set().union(*(categories[int(i)] for i in chosen))
    diverse = greedy_diverse_subset(items, categories, 3)
    diverse_covered = set().union(*(categories[int(i)] for i in diverse))
    assert len(covered) <= len(diverse_covered)


def test_monotonous_subset_randomized_varies():
    categories = [frozenset({i % 3}) for i in range(12)]
    items = np.arange(12)
    rng = np.random.default_rng(0)
    draws = {tuple(sorted(monotonous_subset(items, categories, 3, rng=rng))) for _ in range(20)}
    assert len(draws) > 1


def test_mine_diversity_pairs_structure():
    ds = movielens_like(scale=0.35).filter_min_interactions(5)
    split = ds.split(np.random.default_rng(0))
    for mode in ("negatives", "monotonous"):
        pairs = mine_diversity_pairs(
            split, set_size=4, pairs_per_user=2, mode=mode, rng=np.random.default_rng(1)
        )
        eligible = split.users_with_min_train(4)
        assert len(pairs) == 2 * eligible.shape[0]
        for positive, negative in pairs:
            assert positive.shape == (4,) and negative.shape == (4,)
            assert len(set(map(int, positive))) == 4


def test_mine_diversity_pairs_negative_mode_uses_unobserved():
    ds = movielens_like(scale=0.35).filter_min_interactions(5)
    split = ds.split(np.random.default_rng(0))
    pairs = mine_diversity_pairs(
        split, set_size=4, mode="negatives", rng=np.random.default_rng(2)
    )
    eligible = list(split.users_with_min_train(4))
    for (positive, negative), user in zip(pairs, eligible):
        assert set(map(int, positive)) <= split.train_set(int(user))
        assert not set(map(int, negative)) & split.known_set(int(user))


def test_mine_diversity_pairs_mode_validation():
    ds = movielens_like(scale=0.35).filter_min_interactions(5)
    split = ds.split(np.random.default_rng(0))
    with pytest.raises(ValueError):
        mine_diversity_pairs(split, mode="bogus")


def test_mine_diversity_pairs_positive_sets_are_diverse():
    ds = movielens_like(scale=0.35).filter_min_interactions(5)
    split = ds.split(np.random.default_rng(0))
    pairs = mine_diversity_pairs(
        split, set_size=4, mode="monotonous", rng=np.random.default_rng(3)
    )
    categories = ds.item_categories
    breadth_pos, breadth_neg = [], []
    for positive, negative in pairs:
        breadth_pos.append(len(set().union(*(categories[int(i)] for i in positive))))
        breadth_neg.append(len(set().union(*(categories[int(i)] for i in negative))))
    assert np.mean(breadth_pos) > np.mean(breadth_neg)
