"""Tests for the Eq. 3 diversity-kernel learner."""

import numpy as np
import pytest

from repro.dpp import (
    DiversityKernelConfig,
    DiversityKernelLearner,
    category_jaccard_kernel,
)


def _toy_category_pairs(num_per_cat=8, num_cats=3, count=150, seed=0):
    rng = np.random.default_rng(seed)
    n_items = num_per_cat * num_cats
    cat = np.repeat(np.arange(num_cats), num_per_cat)
    pairs = []
    for _ in range(count):
        diverse = np.array(
            [rng.choice(np.where(cat == c)[0]) for c in range(num_cats)]
        )
        anchor = rng.integers(num_cats)
        monotonous = rng.choice(np.where(cat == anchor)[0], size=num_cats, replace=False)
        pairs.append((diverse, monotonous))
    return n_items, cat, pairs


def test_learner_generalizes_volume_ordering_to_held_out_sets():
    n_items, cat, pairs = _toy_category_pairs()
    _, _, held_out = _toy_category_pairs(seed=99, count=100)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=20, lr=0.03, seed=1)
    )
    learner.fit(pairs)
    kernel = learner.kernel()

    def logdet(subset):
        sub = kernel[np.ix_(subset, subset)] + 1e-9 * np.eye(len(subset))
        return np.linalg.slogdet(sub)[1]

    gaps = [logdet(tp) - logdet(tn) for tp, tn in held_out]
    assert np.mean(gaps) > 1.0
    assert np.mean(np.array(gaps) > 0) > 0.9


def test_objective_improves_over_epochs():
    n_items, _, pairs = _toy_category_pairs(count=60)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=8, lr=0.03, seed=2)
    )
    result = learner.fit(pairs)
    assert result.objective_per_epoch[-1] > result.objective_per_epoch[0]


def test_kernel_is_psd_and_unit_diagonal():
    n_items, _, pairs = _toy_category_pairs(count=40)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=5, seed=3)
    )
    learner.fit(pairs)
    kernel = learner.kernel()
    assert np.allclose(np.diagonal(kernel), 1.0)
    assert np.linalg.eigvalsh(kernel).min() > -1e-8
    raw = learner.kernel(normalize="none")
    assert raw.shape == kernel.shape


def test_kernel_shrink_scales_offdiagonals():
    n_items, _, pairs = _toy_category_pairs(count=30)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=3, seed=4)
    )
    learner.fit(pairs)
    full = learner.kernel(shrink=0.0)
    shrunk = learner.kernel(shrink=0.5)
    off = ~np.eye(n_items, dtype=bool)
    assert np.allclose(shrunk[off], 0.5 * full[off])
    assert np.allclose(np.diagonal(shrunk), np.diagonal(full))
    with pytest.raises(ValueError):
        learner.kernel(shrink=1.0)


def test_factors_normalized_shrink_matches_dense_shrunk_kernel():
    n_items, _, pairs = _toy_category_pairs(count=30)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=3, seed=4)
    )
    learner.fit(pairs)
    for normalize in ("correlation", "none"):
        for shrink in (0.25, 0.6):
            factors = learner.factors_normalized(normalize=normalize, shrink=shrink)
            # Identity augmentation: √shrink-scaled diagonal columns.
            assert factors.shape == (n_items, 8 + n_items)
            np.testing.assert_allclose(
                factors @ factors.T,
                learner.kernel(normalize=normalize, shrink=shrink),
                atol=1e-10,
            )
    # Shrink 0 keeps the compact rank-r form.
    assert learner.factors_normalized(shrink=0.0).shape == (n_items, 8)
    with pytest.raises(ValueError):
        learner.factors_normalized(shrink=1.0)
    with pytest.raises(ValueError):
        learner.factors_normalized(shrink=-0.1)


def test_shrunk_factors_open_the_low_rank_path():
    # The augmented factors make shrunk kernels full rank, so subset
    # sizes beyond the learned rank get positive determinants on the
    # factored path — previously dense-only territory.
    from repro.dpp import KDPP

    n_items, _, pairs = _toy_category_pairs(count=20)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=4, epochs=2, seed=6)
    )
    learner.fit(pairs)
    factors = learner.factors_normalized(shrink=0.3)
    k = 6  # > rank 4: impossible without the identity augmentation
    dual = KDPP.from_factors(factors, k)
    dense = KDPP(learner.kernel(shrink=0.3), k, validate=False)
    assert np.isclose(dual.log_normalizer, dense.log_normalizer, rtol=1e-8)
    subset = list(range(k))
    assert np.isclose(
        dual.log_subset_probability(subset),
        dense.log_subset_probability(subset),
        rtol=1e-8,
    )


def test_submatrix_matches_full_kernel():
    n_items, _, pairs = _toy_category_pairs(count=30)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=3, seed=5)
    )
    learner.fit(pairs)
    items = np.array([0, 5, 11])
    assert np.allclose(
        learner.submatrix(items), learner.kernel()[np.ix_(items, items)]
    )


def test_fit_validation():
    learner = DiversityKernelLearner(10, DiversityKernelConfig(rank=4))
    with pytest.raises(ValueError, match="at least one pair"):
        learner.fit([])
    too_big = (np.arange(6), np.arange(6))
    with pytest.raises(ValueError, match="rank"):
        learner.fit([too_big])


def test_kernel_normalize_validation():
    learner = DiversityKernelLearner(4, DiversityKernelConfig(rank=4))
    with pytest.raises(ValueError):
        learner.kernel(normalize="bogus")


def test_margin_bounds_collapse():
    # With the margin, no training-set submatrix should be pushed to
    # numerical singularity (the failure mode of the raw objective).
    n_items, _, pairs = _toy_category_pairs(count=80)
    learner = DiversityKernelLearner(
        n_items, DiversityKernelConfig(rank=8, epochs=15, lr=0.05, margin=4.0, seed=6)
    )
    learner.fit(pairs)
    kernel = learner.kernel()
    worst = min(
        np.linalg.eigvalsh(kernel[np.ix_(tn, tn)]).min() for _, tn in pairs[:40]
    )
    assert worst > -1e-8  # PSD maintained
    def ld(s):
        return np.linalg.slogdet(kernel[np.ix_(s, s)] + 1e-9 * np.eye(len(s)))[1]

    gaps = []
    for tp, tn in pairs[:40]:
        gaps.append(ld(tp) - ld(tn))
    # Bounded: gaps exist but are not astronomically large.
    assert 0.5 < np.mean(gaps) < 60.0


def test_category_jaccard_kernel_properties():
    categories = [frozenset({0}), frozenset({0, 1}), frozenset({2})]
    kernel = category_jaccard_kernel(categories, scale=1.0, floor=0.1)
    assert kernel.shape == (3, 3)
    assert np.linalg.eigvalsh(kernel).min() > 0
    # Items sharing categories are more similar than disjoint ones.
    assert kernel[0, 1] > kernel[0, 2]


def test_category_jaccard_kernel_matches_reference_loop():
    # The vectorized membership-matrix construction must reproduce the
    # original O(M^2) Python set loop exactly.
    def reference(item_categories, scale, floor):
        m = len(item_categories)
        kernel = np.zeros((m, m), dtype=np.float64)
        for i in range(m):
            kernel[i, i] = floor + scale
            for j in range(i + 1, m):
                a, b = item_categories[i], item_categories[j]
                union = len(a | b)
                jaccard = len(a & b) / union if union else 0.0
                value = floor + scale * jaccard
                kernel[i, j] = kernel[j, i] = value
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        eigenvalues = np.clip(eigenvalues, 1e-8, None)
        return (eigenvectors * eigenvalues) @ eigenvectors.T

    rng = np.random.default_rng(0)
    categories = [
        frozenset(rng.choice(12, size=rng.integers(0, 5), replace=False).tolist())
        for _ in range(40)
    ]
    # include an all-empty pairing (union == 0 branch)
    categories[3] = frozenset()
    categories[11] = frozenset()
    for scale, floor in ((1.0, 0.05), (0.8, 0.2)):
        np.testing.assert_allclose(
            category_jaccard_kernel(categories, scale=scale, floor=floor),
            reference(categories, scale, floor),
            rtol=1e-12,
            atol=1e-12,
        )
