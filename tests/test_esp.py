"""Tests for elementary symmetric polynomials — the k-DPP normalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, check_gradient
from repro.dpp import esp as esp_module
from repro.dpp.esp import (
    differentiable_esps,
    differentiable_log_esp,
    differentiable_log_esp_newton,
    elementary_symmetric_polynomials,
    esp_bruteforce,
    esp_from_power_sums,
    esp_leave_one_out,
    esp_table,
)

eigens = st.lists(st.floats(0.05, 4.0), min_size=2, max_size=9)


@settings(max_examples=60, deadline=None)
@given(eigens, st.data())
def test_algorithm1_matches_bruteforce(values, data):
    lam = np.array(values)
    k = data.draw(st.integers(1, len(lam)))
    assert np.isclose(
        elementary_symmetric_polynomials(lam, k), esp_bruteforce(lam, k), rtol=1e-9
    )


def test_esp_edge_cases():
    lam = np.array([2.0, 3.0])
    assert elementary_symmetric_polynomials(lam, 0) == 1.0
    assert np.isclose(elementary_symmetric_polynomials(lam, 1), 5.0)
    assert np.isclose(elementary_symmetric_polynomials(lam, 2), 6.0)
    with pytest.raises(ValueError):
        elementary_symmetric_polynomials(lam, 3)
    with pytest.raises(ValueError):
        elementary_symmetric_polynomials(lam, -1)


def test_esp_table_prefix_property():
    lam = np.array([1.0, 2.0, 3.0, 4.0])
    table = esp_table(lam, 3)
    # Column m holds ESPs of the first m eigenvalues.
    for m in range(1, 5):
        for level in range(0, min(3, m) + 1):
            assert np.isclose(table[level, m], esp_bruteforce(lam[:m], level))


@settings(max_examples=40, deadline=None)
@given(eigens, st.data())
def test_newton_identities_match_algorithm1(values, data):
    lam = np.array(values)
    k = data.draw(st.integers(1, len(lam)))
    power_sums = np.array([(lam**i).sum() for i in range(1, k + 1)])
    esps = esp_from_power_sums(power_sums, k)
    assert np.isclose(esps[k], elementary_symmetric_polynomials(lam, k), rtol=1e-7)


@settings(max_examples=40, deadline=None)
@given(eigens, st.data())
def test_leave_one_out_matches_bruteforce(values, data):
    lam = np.array(values)
    k = data.draw(st.integers(1, len(lam)))
    loo = esp_leave_one_out(lam, k)
    for i in range(len(lam)):
        assert np.isclose(loo[i], esp_bruteforce(np.delete(lam, i), k - 1), rtol=1e-8)


def _random_psd(seed, n, ridge=0.2):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n))
    return x @ x.T + ridge * np.eye(n)


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 8), st.integers(0, 2**32 - 1), st.data())
def test_differentiable_log_esp_value(n, seed, data):
    k = data.draw(st.integers(1, n))
    kernel = _random_psd(seed, n)
    lam = np.linalg.eigvalsh(kernel)
    expected = np.log(esp_bruteforce(lam, k))
    assert np.isclose(differentiable_log_esp(Tensor(kernel), k).item(), expected, rtol=1e-8)


def test_differentiable_log_esp_equals_newton_variant():
    kernel = _random_psd(7, 6, ridge=0.5)
    for k in (1, 3, 5):
        a = differentiable_log_esp(Tensor(kernel), k).item()
        b = differentiable_log_esp_newton(Tensor(kernel), k).item()
        assert np.isclose(a, b, rtol=1e-9)


def test_differentiable_log_esp_gradient():
    rng = np.random.default_rng(3)

    def fn(x):
        sym = (x + x.transpose()) * 0.5
        return differentiable_log_esp(sym @ sym.transpose() + Tensor(0.2 * np.eye(5)), 3)

    check_gradient(fn, rng.normal(size=(5, 5)), rtol=1e-3, atol=1e-5)


def test_differentiable_log_esp_extreme_spectrum():
    # Spectrum spread over ~40 orders of magnitude must neither overflow
    # nor underflow (this regime broke the Newton-identity route).
    q = np.exp(np.array([12.0, 12.0, 11.0, -10.0, -11.0, -12.0, -12.0, -12.0]))
    kernel = np.diag(q) @ (0.3 * np.ones((8, 8)) + 0.7 * np.eye(8)) @ np.diag(q)
    kernel += 1e-9 * np.eye(8)
    t = Tensor(kernel, requires_grad=True)
    out = differentiable_log_esp(t, 4)
    out.backward()
    assert np.isfinite(out.item())
    assert np.all(np.isfinite(t.grad))


def test_differentiable_log_esp_degenerate_eigenvalues():
    # Repeated eigenvalues: spectral-function gradient must stay exact.
    def fn(x):
        sym = (x + x.transpose()) * 0.5
        return differentiable_log_esp(
            Tensor(2.0 * np.eye(5)) + sym @ sym.transpose() * 0.01, 3
        )

    check_gradient(fn, np.random.default_rng(4).normal(size=(5, 5)), rtol=1e-3, atol=1e-5)


def test_differentiable_log_esp_rank_deficient_raises():
    kernel = np.zeros((4, 4))
    kernel[0, 0] = 1.0
    with pytest.raises(FloatingPointError):
        differentiable_log_esp(Tensor(kernel), 3)


def test_differentiable_log_esp_k_validation():
    kernel = np.eye(3)
    with pytest.raises(ValueError):
        differentiable_log_esp(Tensor(kernel), 0)
    with pytest.raises(ValueError):
        differentiable_log_esp(Tensor(kernel), 4)


def test_differentiable_esps_series():
    kernel = _random_psd(5, 5, ridge=0.5)
    lam = np.linalg.eigvalsh(kernel)
    series = differentiable_esps(Tensor(kernel), 3)
    for k, value in enumerate(series):
        assert np.isclose(value.item(), esp_bruteforce(lam, k), rtol=1e-7)


def test_scaling_identity():
    # e_k(c * lambda) = c^k e_k(lambda): the stabilization we rely on.
    lam = np.array([0.5, 1.0, 2.0, 3.0])
    c = 7.3
    for k in (1, 2, 3, 4):
        assert np.isclose(
            elementary_symmetric_polynomials(c * lam, k),
            c**k * elementary_symmetric_polynomials(lam, k),
            rtol=1e-9,
        )
