"""Tests for the experiment harness (factories, runners, reporting)."""

import numpy as np
import pytest

from repro.experiments import (
    QUICK,
    SCALES,
    CellResult,
    ExperimentScale,
    build_criterion,
    build_model,
    prepare_dataset,
    render_improvements,
    render_rework_table,
    render_table,
    run_cell,
    table1_dataset_statistics,
)
from repro.losses import LkPCriterion
from repro.models import (
    GCMCRecommender,
    GCNRecommender,
    MFRecommender,
    NeuMFRecommender,
)

TINY = ExperimentScale(
    name="tiny",
    dataset_scale=0.3,
    min_interactions=5,
    dim=8,
    epochs=3,
    patience=0,
    batch_size=32,
    base_lr=0.05,
    lkp_lr=0.1,
    kernel_rank=8,
    kernel_epochs=2,
    kernel_pairs_per_user=1,
    k=3,
    n=3,
)


@pytest.fixture(scope="module")
def prepared():
    return prepare_dataset("ml-like", TINY)


def test_scales_registry():
    assert set(SCALES) == {"quick", "small", "full"}
    assert SCALES["quick"] is QUICK


def test_prepare_dataset_validation():
    with pytest.raises(ValueError):
        prepare_dataset("bogus", TINY)
    with pytest.raises(ValueError):
        prepare_dataset("ml-like", TINY, kernel_source="bogus")


def test_prepare_dataset_caches(prepared):
    again = prepare_dataset("ml-like", TINY)
    assert again is prepared


def test_prepared_kernel_properties(prepared):
    # The learned kernel is carried in factored form; the dense Gram is
    # materialized only on demand (and then cached).
    factors = prepared.diversity_factors
    assert factors is not None
    assert factors.shape[0] == prepared.dataset.num_items
    assert prepared.diversity_kernel_dense is None
    kernel = prepared.diversity_kernel
    assert prepared.diversity_kernel_dense is kernel
    assert kernel.shape == (prepared.dataset.num_items, prepared.dataset.num_items)
    assert np.allclose(kernel, factors @ factors.T)
    assert np.allclose(np.diagonal(kernel), 1.0)
    assert np.allclose(kernel, kernel.T)
    items = np.array([0, 2, 5])
    assert np.allclose(
        prepared.diversity_submatrix(items), kernel[np.ix_(items, items)]
    )


def test_prepare_dataset_category_kernel_source():
    prepared = prepare_dataset("ml-like", TINY, kernel_source="category", use_cache=False)
    # No factored form exists for the full-rank category kernel.
    assert prepared.diversity_factors is None
    assert np.allclose(np.diagonal(prepared.diversity_kernel), 1.0)
    items = np.array([1, 3])
    assert np.allclose(
        prepared.diversity_submatrix(items),
        prepared.diversity_kernel[np.ix_(items, items)],
    )


def test_build_model_kinds(prepared):
    assert isinstance(build_model("mf", prepared), MFRecommender)
    assert isinstance(build_model("gcn", prepared), GCNRecommender)
    assert isinstance(build_model("lightgcn", prepared), GCNRecommender)
    assert isinstance(build_model("neumf", prepared), NeuMFRecommender)
    assert isinstance(build_model("gcmc", prepared), GCMCRecommender)
    with pytest.raises(ValueError):
        build_model("bogus", prepared)


def test_build_criterion_codes(prepared):
    assert isinstance(build_criterion("PS", prepared), LkPCriterion)
    assert build_criterion("NPS", prepared).use_negative_set
    assert build_criterion("BPR", prepared).name == "BPR"
    assert build_criterion("BCE", prepared).name == "BCE"
    assert build_criterion("SetRank", prepared).name == "SetRank"
    assert build_criterion("S2SRank", prepared).name == "S2SRank"
    assert build_criterion("GCMC-NLL", prepared).name == "GCMC-NLL"
    with pytest.raises(ValueError):
        build_criterion("bogus", prepared)


def test_run_cell_produces_full_metric_set(prepared):
    cell = run_cell("mf", "BPR", prepared)
    assert cell.method == "BPR"
    assert cell.model is not None
    for family in ("Re", "Nd", "CC", "F"):
        for cutoff in (5, 10, 20):
            assert f"{family}@{cutoff}" in cell.metrics
    assert cell.train_result.epochs_run >= 1


def test_run_cell_lkp_uses_lkp_lr(prepared):
    cell = run_cell("mf", "PS", prepared, k=3, n=3)
    assert cell.method == "LkP-PS"
    assert all(np.isfinite(v) for v in cell.metrics.values())


def test_table1_renders_all_datasets():
    report = table1_dataset_statistics(TINY)
    assert "beauty-like" in report.text
    assert "ml-like" in report.text
    assert "anime-like" in report.text


def _fake_cell(method, value):
    from repro.eval import EvalResult
    from repro.train import TrainResult

    metrics = {
        f"{family}@{cutoff}": value
        for family in ("Re", "Nd", "CC", "F")
        for cutoff in (5, 10, 20)
    }
    return CellResult(
        method=method,
        model_kind="mf",
        dataset="x",
        eval_result=EvalResult(metrics=metrics, num_users_evaluated=1),
        train_result=TrainResult(),
    )


def test_render_table_and_improvements():
    cells = [_fake_cell("LkP-PS", 0.2), _fake_cell("BPR", 0.1), _fake_cell("BCE", 0.05)]
    text = render_table(cells, title="T")
    assert "LkP-PS" in text and "BPR" in text
    improvements = render_improvements(cells)
    # max vs max: (0.2 - 0.1) / 0.1 = 100%; max vs min: 300%.
    assert "100.00" in improvements
    assert "300.00" in improvements


def test_render_improvements_requires_both_sides():
    assert "need both" in render_improvements([_fake_cell("BPR", 0.1)])


def test_render_rework_table():
    base = _fake_cell("GCMC", 0.1)
    reworked = [_fake_cell("GCMC-PS", 0.12), _fake_cell("GCMC-NPS", 0.15)]
    text = render_rework_table(base, reworked)
    assert "Improv" in text
    assert "50.00" in text  # (0.15 - 0.1)/0.1
