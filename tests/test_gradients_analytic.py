"""Validate the paper's analytic gradients (Eq. 12/14/15) against autodiff.

These tests are the mathematical heart of the reproduction: the autodiff
engine and the paper's closed-form derivations are two independent routes
to the same gradients, so their agreement validates both at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import GroundSetInstance
from repro.losses import LkPCriterion, build_mf_kernel, lkp_analytic_gradients
from repro.models import MFRecommender


def _random_world(seed, num_items=12, dim=4, k=3, n=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(num_items, num_items))
    diversity = x @ x.T / num_items + 0.5 * np.eye(num_items)
    diag = np.sqrt(np.diagonal(diversity))
    diversity = diversity / np.outer(diag, diag)
    model = MFRecommender(2, num_items, dim=dim, rng=seed)
    ground = rng.choice(num_items, size=k + n, replace=False)
    instance = GroundSetInstance(user=0, targets=ground[:k], negatives=ground[k:])
    return model, diversity, instance


def test_build_mf_kernel_matches_eq13():
    rng = np.random.default_rng(0)
    user = rng.normal(size=3)
    items = rng.normal(size=(4, 3))
    diversity = np.eye(4)
    kernel, quality = build_mf_kernel(user, items, diversity, jitter=0.0)
    for i in range(4):
        for j in range(4):
            expected = np.exp(user @ items[i]) * diversity[i, j] * np.exp(user @ items[j])
            assert np.isclose(kernel[i, j], expected)
    with pytest.raises(ValueError):
        build_mf_kernel(user, items, np.eye(3))


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_analytic_gradients_match_autodiff(seed, use_negative):
    k = 3
    model, diversity, instance = _random_world(seed, k=k, n=k)
    criterion = LkPCriterion(
        k=k, n=k, use_negative_set=use_negative, diversity_kernel=diversity, jitter=1e-6
    )
    loss = criterion.instance_loss(model, model.representations(), instance)
    model.zero_grad()
    loss.backward()

    user_vec = model.user_embedding.weight.data[instance.user]
    item_vecs = model.item_embedding.weight.data[instance.ground_set]
    sub_kernel = diversity[np.ix_(instance.ground_set, instance.ground_set)]
    reference = lkp_analytic_gradients(
        user_vec, item_vecs, sub_kernel, k=k, use_negative_set=use_negative, jitter=1e-6
    )

    assert np.isclose(loss.item(), reference.loss, rtol=1e-7)
    autodiff_user = model.user_embedding.weight.grad[instance.user]
    assert np.allclose(autodiff_user, reference.user_grad, rtol=1e-4, atol=1e-8)
    for position, item in enumerate(instance.ground_set):
        autodiff_item = model.item_embedding.weight.grad[item]
        assert np.allclose(
            autodiff_item, reference.item_grads[position], rtol=1e-4, atol=1e-8
        )


def test_analytic_gradients_match_finite_differences():
    k = 2
    model, diversity, instance = _random_world(5, num_items=8, dim=3, k=k, n=k)
    user_vec = model.user_embedding.weight.data[instance.user].copy()
    item_vecs = model.item_embedding.weight.data[instance.ground_set].copy()
    sub = diversity[np.ix_(instance.ground_set, instance.ground_set)]
    reference = lkp_analytic_gradients(user_vec, item_vecs, sub, k=k, jitter=1e-8)

    def loss_at(user_perturbed):
        grads = lkp_analytic_gradients(user_perturbed, item_vecs, sub, k=k, jitter=1e-8)
        return grads.loss

    eps = 1e-6
    numeric = np.zeros_like(user_vec)
    for d in range(user_vec.shape[0]):
        up = user_vec.copy()
        up[d] += eps
        down = user_vec.copy()
        down[d] -= eps
        numeric[d] = (loss_at(up) - loss_at(down)) / (2 * eps)
    assert np.allclose(reference.user_grad, numeric, rtol=1e-4, atol=1e-7)


def test_analytic_np_requires_matching_sizes():
    model, diversity, instance = _random_world(7, k=3, n=3)
    items = model.item_embedding.weight.data[instance.ground_set]
    sub = diversity[np.ix_(instance.ground_set, instance.ground_set)]
    with pytest.raises(ValueError, match="m == 2k"):
        lkp_analytic_gradients(
            model.user_embedding.weight.data[0], items, sub, k=2, use_negative_set=True
        )


def test_gradient_weights_are_kdpp_probabilities():
    """Eq. 12's w_{S'} must form the k-DPP distribution over k-subsets."""
    from repro.losses.gradients import _subset_weights

    rng = np.random.default_rng(9)
    x = rng.normal(size=(6, 6))
    kernel = x @ x.T + 0.3 * np.eye(6)
    subsets, weights, normalizer = _subset_weights(kernel, 3)
    assert np.isclose(weights.sum(), 1.0)
    from repro.dpp import KDPP

    dpp = KDPP(kernel, 3)
    for subset, weight in zip(subsets, weights):
        assert np.isclose(weight, dpp.subset_probability(subset), rtol=1e-8)
