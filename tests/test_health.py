"""Product-health suite: auditing, canaries, drift, SLO burn rates.

Contracts pinned here:

1. **Parity** — ``audit_rate=0`` (the default) is bit-identical to the
   audited stack, seeded samples included: the auditor's sampler is the
   trace sampler's credit accumulator, never an RNG draw, and auditing
   runs strictly after the engine batch resolves.
2. **Burn math** — under a :class:`~repro.utils.timing.ManualClock` the
   fast/slow burn rates are exact rational numbers: breach needs both
   windows hot, a single hot window only warns, and events age out of
   the fast window before the slow one (the multi-window convention).
3. **Drift** — an injected quality shift fires exactly once (reference
   rebases) and flags health until a post-rebase window settles;
   stationary traffic stays quiet forever.
4. **Canaries** — the baseline freezes *before* the catalog swap, so
   requests admitted (pinned to the old snapshot) but audited during or
   after the publish cannot move it; a collapsed-factor publish trips
   ``canary_regression`` while a clean one passes.

No sleeps: manual clocks everywhere, ``workers=0`` inline dispatch.
"""

import numpy as np
import pytest

from repro.serving import (
    DEGRADED,
    HEALTHY,
    SLO,
    UNHEALTHY,
    AlertSink,
    CanaryReport,
    DriftDetector,
    EventLog,
    HealthStatus,
    ItemCatalog,
    MetricsRegistry,
    Request,
    ServingConfig,
    ServingRuntime,
    SLOTracker,
    WindowedStat,
)
from repro.serving.resilience import DeadlineExceeded
from repro.utils.timing import ManualClock


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality(seed: int, m: int, scale: float = 1.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return scale * np.exp(rng.normal(scale=0.3, size=m))


def _serve(rt: ServingRuntime, requests) -> list:
    futures = rt.submit_many(requests)
    rt.flush()
    return [future.result() for future in futures]


# ----------------------------------------------------------------------
# WindowedStat / DriftDetector / AlertSink primitives
# ----------------------------------------------------------------------
def test_windowed_stat_ring_semantics():
    stat = WindowedStat(capacity=4)
    assert stat.mean() is None and stat.std() is None
    assert stat.count == 0 and not stat.full
    for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        stat.add(value)
    # capacity 4: the first two samples were evicted
    assert stat.values() == [3.0, 4.0, 5.0, 6.0]
    assert stat.count == 4 and stat.added == 6 and stat.full
    assert stat.mean() == pytest.approx(4.5)
    assert stat.std() == pytest.approx(np.std([3.0, 4.0, 5.0, 6.0]))
    stat.clear()
    assert stat.count == 0 and stat.added == 6
    with pytest.raises(ValueError, match="capacity"):
        WindowedStat(capacity=1)


def test_drift_detector_quiet_on_stationary_traffic():
    rng = np.random.default_rng(11)
    detector = DriftDetector("quality_mass", window=16, threshold=3.0)
    for value in 1.0 + 0.05 * rng.standard_normal(200):
        assert detector.add(float(value)) is None
    assert detector.fired == 0 and not detector.flagged


def test_drift_detector_fires_once_on_shift_then_recovers():
    rng = np.random.default_rng(12)
    detector = DriftDetector("ilad", window=8, threshold=3.0)
    for value in 1.0 + 0.02 * rng.standard_normal(16):
        detector.add(float(value))
    assert detector.fired == 0
    # regime change: the mean doubles — drift fires mid-stream
    record = None
    for value in 2.0 + 0.02 * rng.standard_normal(16):
        record = detector.add(float(value))
        if record is not None:
            break
    assert record is not None and record["metric"] == "ilad"
    assert record["shift"] == pytest.approx(
        record["current_mean"] - record["reference_mean"]
    )
    assert detector.flagged and detector.fired == 1
    # a full post-rebase window at the new level clears the flag
    # without re-firing: one regime change alerts exactly once
    for value in 2.0 + 0.02 * rng.standard_normal(detector.window):
        assert detector.add(float(value)) is None
    assert not detector.flagged and detector.fired == 1
    stats = detector.stats()
    assert stats["fired"] == 1 and not stats["flagged"]


def test_drift_detector_validates():
    with pytest.raises(ValueError, match="window"):
        DriftDetector("m", window=1)
    with pytest.raises(ValueError, match="threshold"):
        DriftDetector("m", threshold=0.0)
    with pytest.raises(ValueError, match="min_shift"):
        DriftDetector("m", min_shift=-0.1)


def test_alert_sink_callbacks_and_retention():
    clock = ManualClock(start=3.0)
    seen = []
    sink = AlertSink(callback=seen.append, clock=clock, keep=2)

    def _raising(alert):
        raise RuntimeError("pager down")

    sink.subscribe(_raising)  # must never take the caller down
    first = sink.emit("drift", metric="ilad")
    clock.advance(1.0)
    sink.emit("slo_burn", slo="latency")
    sink.emit("slo_burn", slo="availability")
    assert first == {"kind": "drift", "time": 3.0, "metric": "ilad"}
    assert [alert["kind"] for alert in seen] == ["drift", "slo_burn", "slo_burn"]
    assert sink.emitted == 3
    # keep=2: the drift alert rolled off; kind filter works
    assert [alert["kind"] for alert in sink.snapshot()] == ["slo_burn", "slo_burn"]
    assert sink.snapshot(kind="drift") == []
    with pytest.raises(ValueError, match="keep"):
        AlertSink(keep=0)


# ----------------------------------------------------------------------
# SLO declarations and burn-rate math
# ----------------------------------------------------------------------
def test_slo_validation_and_budget_defaults():
    assert SLO("a", "latency", target=0.05).error_budget == 0.01
    assert SLO("b", "availability", target=0.999).error_budget == pytest.approx(0.001)
    assert SLO("c", "error_rate", target=0.02).error_budget == 0.02
    assert SLO("d", "degraded_rate", target=0.1, budget=0.5).error_budget == 0.5
    with pytest.raises(ValueError, match="objective"):
        SLO("e", "throughput", target=1.0)
    with pytest.raises(ValueError, match="target"):
        SLO("e", "latency", target=0.0)
    with pytest.raises(ValueError, match="availability target"):
        SLO("e", "availability", target=1.0)
    with pytest.raises(ValueError, match="fast_window"):
        SLO("e", "latency", target=0.05, window=60.0, fast_window=120.0)
    with pytest.raises(ValueError, match="burn_threshold"):
        SLO("e", "latency", target=0.05, burn_threshold=0.0)
    with pytest.raises(ValueError, match="budget"):
        SLO("e", "latency", target=0.05, budget=2.0)


def test_slo_tracker_rejects_bad_declarations():
    with pytest.raises(TypeError, match="SLO instances"):
        SLOTracker(slos=("not-an-slo",))
    slo = SLO("dup", "error_rate", target=0.01)
    with pytest.raises(ValueError, match="duplicate"):
        SLOTracker(slos=(slo, slo))


def test_burn_rates_are_exact_under_manual_clock():
    """5% failures against a 1% budget burn at exactly 5.0x."""
    clock = ManualClock()
    registry = MetricsRegistry()
    log = EventLog(capacity=32)
    sink = AlertSink(clock=clock)
    slo = SLO("avail", "availability", target=0.99, window=60.0, fast_window=10.0)
    tracker = SLOTracker(
        slos=(slo,), clock=clock, registry=registry, event_log=log, alert_sink=sink
    )
    clock.advance(100.0)
    for i in range(100):
        tracker.record(error=(i < 5))
    (evaluation,) = tracker.evaluate()
    assert evaluation["slow_burn"] == pytest.approx(5.0)
    assert evaluation["fast_burn"] == pytest.approx(5.0)
    assert evaluation["slow_events"] == 100 and evaluation["fast_events"] == 100
    assert evaluation["breached"] and not evaluation["warning"]
    status, reasons, _ = tracker.health()
    assert status == UNHEALTHY and "avail" in reasons[0]
    # edge-triggered: one slo_burn event + alert, not one per evaluate
    tracker.evaluate()
    assert [event["kind"] for event in log.snapshot()] == ["slo_burn"]
    assert [alert["kind"] for alert in sink.snapshot()] == ["slo_burn"]
    burn_gauge = registry.gauge(
        "slo_burn_rate",
        "error-budget burn rate per SLO and window",
        labelnames=("slo", "window"),
    )
    assert burn_gauge.labels(slo="avail", window="fast").value == pytest.approx(5.0)


def test_fast_window_ages_out_before_slow_window():
    """Multi-window semantics: breach -> warning -> recovery as the
    errors age out of the fast then the slow window."""
    clock = ManualClock()
    log = EventLog(capacity=32)
    slo = SLO("avail", "availability", target=0.99, window=60.0, fast_window=10.0)
    tracker = SLOTracker(slos=(slo,), clock=clock, event_log=log)
    clock.advance(100.0)
    for i in range(100):
        tracker.record(error=(i < 5))
    assert tracker.health()[0] == UNHEALTHY
    # +11s: the failures left the 10s fast window but sit in the slow one
    clock.advance(11.0)
    for _ in range(100):
        tracker.record(error=False)
    (evaluation,) = tracker.evaluate()
    assert evaluation["fast_burn"] == 0.0
    assert evaluation["slow_burn"] == pytest.approx(5.0 / 2)  # 5 bad / 200 total
    assert not evaluation["breached"] and evaluation["warning"]
    assert tracker.health()[0] == DEGRADED
    # +100s: everything expired; fresh traffic is clean
    clock.advance(100.0)
    tracker.record(error=False)
    (evaluation,) = tracker.evaluate()
    assert evaluation["slow_burn"] == 0.0 and evaluation["fast_burn"] == 0.0
    assert tracker.health()[0] == HEALTHY
    assert [event["kind"] for event in log.snapshot()] == [
        "slo_burn",
        "slo_recovered",
    ]


def test_latency_slo_skips_failed_requests():
    clock = ManualClock()
    slo = SLO("lat", "latency", target=0.05, window=60.0, fast_window=10.0)
    tracker = SLOTracker(slos=(slo,), clock=clock)
    clock.advance(50.0)
    tracker.record(seconds=0.01)          # good
    tracker.record(seconds=0.20)          # over target: bad
    tracker.record(error=True)            # failed: no latency sample
    (evaluation,) = tracker.evaluate()
    assert evaluation["slow_events"] == 2
    # 1 bad / 2 total / 0.01 budget
    assert evaluation["slow_burn"] == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Audit sampling parity and determinism
# ----------------------------------------------------------------------
def _sampled_requests(m: int) -> list[Request]:
    return [
        Request(quality=_quality(31, m), k=4, mode="sample", seed=101),
        Request(quality=_quality(32, m), k=4, mode="map"),
        Request(quality=_quality(33, m), k=3, mode="sample", seed=55, alpha=1.5),
        Request(quality=_quality(34, m), k=3, mode="topk-rerank", rerank_pool=20),
    ]


def _serve_at_audit_rate(factors: np.ndarray, requests, audit_rate: float):
    catalog = ItemCatalog(factors)
    config = ServingConfig(workers=0, clock=ManualClock(), audit_rate=audit_rate)
    with ServingRuntime(catalog, config=config) as rt:
        return _serve(rt, requests)


def test_audit_rate_zero_is_bitwise_identical_to_auditing():
    """Auditing never perturbs payloads: seeded samples byte-match."""
    m = 70
    factors = _factors(31, m, 6)
    requests = _sampled_requests(m)
    unaudited = _serve_at_audit_rate(factors, requests, audit_rate=0.0)
    audited = _serve_at_audit_rate(factors, requests, audit_rate=1.0)
    for off, on in zip(unaudited, audited):
        assert off.items == on.items
        assert off.log_probability == on.log_probability
        assert off == on


def test_audit_rate_zero_stays_silent():
    catalog = ItemCatalog(_factors(35, 40, 5))
    config = ServingConfig(workers=0, clock=ManualClock())  # audit_rate=0 default
    with ServingRuntime(catalog, config=config) as rt:
        _serve(rt, [Request(quality=_quality(35, 40), k=3, mode="map")] * 4)
        rt.publish(_factors(36, 40, 5))
        assert rt.auditor.audited == 0
        assert rt.auditor.pending_canary is None and rt.last_canary is None
        # no canary/audit events pollute the log when auditing is off
        assert [e["kind"] for e in rt.telemetry().event_log.snapshot()] == ["publish"]


def test_fractional_audit_rate_samples_deterministically():
    m = 40
    catalog = ItemCatalog(_factors(41, m, 5))
    config = ServingConfig(workers=0, clock=ManualClock(), audit_rate=0.5)
    with ServingRuntime(catalog, config=config) as rt:
        _serve(rt, [Request(quality=_quality(41, m), k=2, mode="map")] * 6)
        # credit accumulator at rate 0.5: every second response audits
        assert rt.auditor.audited == 3


def test_audit_aggregates_match_response_payloads():
    m = 50
    catalog = ItemCatalog(_factors(42, m, 6))
    config = ServingConfig(workers=0, clock=ManualClock(), audit_rate=1.0)
    quality = _quality(42, m)
    with ServingRuntime(catalog, config=config) as rt:
        responses = _serve(
            rt, [Request(quality=quality, k=4, mode="map") for _ in range(5)]
        )
        aggregate = rt.auditor.aggregate(0)
    assert aggregate["audits"] == 5 and aggregate["served"] == 5
    expected_mass = float(np.mean([quality[list(r.items)].sum() for r in responses]))
    assert aggregate["quality_mass"] == pytest.approx(expected_mass)
    expected_logp = float(np.mean([r.log_probability for r in responses]))
    assert aggregate["log_probability"] == pytest.approx(expected_logp)
    assert aggregate["slate_size"] == pytest.approx(4.0)
    assert aggregate["ilad"] > 0.0 and 0.0 <= aggregate["similarity"] <= 1.0
    assert aggregate["degraded_rate"] == 0.0


def test_slate_geometry_matches_eval_metrics_math():
    """The audit path's vectorized ILAD is the reference
    intra_list_distance, not a reimplementation that can skew."""
    from repro.eval.metrics import intra_list_distance
    from repro.serving.health import _slate_geometry

    rng = np.random.default_rng(9)
    for k, r in ((2, 4), (5, 16), (12, 8)):
        rows = rng.normal(size=(k, r))
        ilad, similarity = _slate_geometry(rows)
        assert ilad == pytest.approx(
            intra_list_distance(np.arange(k), rows), rel=1e-12
        )
        assert 0.0 <= similarity <= 1.0
    assert _slate_geometry(rng.normal(size=(1, 4))) == (0.0, 0.0)


def test_audit_config_validation():
    with pytest.raises(ValueError, match="audit_rate"):
        ServingConfig(audit_rate=1.5)
    with pytest.raises(ValueError, match="audit_window"):
        ServingConfig(audit_window=1)
    with pytest.raises(ValueError, match="canary_min_audits"):
        ServingConfig(canary_min_audits=0)
    with pytest.raises(ValueError, match="canary_tolerance"):
        ServingConfig(canary_tolerance=0.0)
    with pytest.raises(ValueError, match="drift_window"):
        ServingConfig(drift_window=1)
    with pytest.raises(ValueError, match="drift_threshold"):
        ServingConfig(drift_threshold=0.0)
    with pytest.raises(ValueError, match="SLO"):
        ServingConfig(slos=("nope",))
    with pytest.raises(ValueError, match="alert_sink"):
        ServingConfig(alert_sink="not-callable")


# ----------------------------------------------------------------------
# Publish canaries
# ----------------------------------------------------------------------
def test_canary_baseline_survives_submits_during_publish():
    """Requests admitted before the swap (pinned to the old snapshot)
    but audited after it cannot move the frozen baseline."""
    m = 60
    catalog = ItemCatalog(_factors(61, m, 6))
    config = ServingConfig(
        workers=0, clock=ManualClock(), audit_rate=1.0, canary_min_audits=4
    )
    with ServingRuntime(catalog, config=config) as rt:
        _serve(rt, [Request(quality=_quality(61, m), k=3, mode="map")] * 6)
        frozen = rt.auditor.aggregate(0)
        assert frozen["audits"] == 6
        # admitted (and snapshot-pinned) but NOT yet flushed
        in_flight = rt.submit_many(
            [Request(quality=_quality(62, m), k=3, mode="map")] * 6
        )
        rt.publish(_factors(63, m, 6))
        rt.flush()
        for future in in_flight:
            assert future.result().version == 0  # served off the old pins
        assert rt.auditor.aggregate(0)["audits"] == 12
        pending = rt.auditor.pending_canary
        # the armed baseline is the pre-publish freeze, not the 12-audit view
        assert pending["baseline"]["audits"] == 6
        assert pending["baseline"]["quality_mass"] == pytest.approx(
            frozen["quality_mass"]
        )
        # v1 traffic completes the canary against that frozen baseline
        _serve(rt, [Request(quality=_quality(64, m), k=3, mode="map")] * 4)
        report = rt.last_canary
        assert report is not None and report.baseline_version == 0
        assert report.version == 1 and report.audits == 4
        assert report.metrics["quality_mass"]["baseline"] == pytest.approx(
            frozen["quality_mass"]
        )


def test_canary_skipped_without_enough_baseline_audits():
    catalog = ItemCatalog(_factors(65, 40, 5))
    config = ServingConfig(
        workers=0, clock=ManualClock(), audit_rate=1.0, canary_min_audits=8
    )
    with ServingRuntime(catalog, config=config) as rt:
        _serve(rt, [Request(quality=_quality(65, 40), k=3, mode="map")] * 2)
        rt.publish(_factors(66, 40, 5))
        assert rt.auditor.pending_canary is None
        events = rt.telemetry().event_log.snapshot(kind="canary_skipped")
        assert len(events) == 1
        assert events[0]["baseline_audits"] == 2 and events[0]["needed"] == 8


def _collapsed_factors(seed: int, m: int, r: int) -> np.ndarray:
    """Nearly rank-1 factors: every item points the same way, so any
    slate's intra-list distance collapses — a catastrophic publish."""
    rng = np.random.default_rng(seed)
    direction = np.ones(r) / np.sqrt(r)
    factors = np.tile(direction, (m, 1)) + 0.01 * rng.normal(size=(m, r))
    return factors / np.linalg.norm(factors, axis=1, keepdims=True)


def _canary_runtime(m: int = 60):
    catalog = ItemCatalog(_factors(71, m, 6))
    clock = ManualClock()
    config = ServingConfig(
        workers=0, clock=clock, audit_rate=1.0, canary_min_audits=6
    )
    return ServingRuntime(catalog, config=config)


def test_corrupted_publish_trips_canary_regression():
    m = 60
    requests = [
        Request(quality=_quality(72, m), k=4, mode="sample", seed=i) for i in range(8)
    ]
    with _canary_runtime(m) as rt:
        _serve(rt, requests)
        rt.publish(_collapsed_factors(73, m, 6))
        _serve(rt, requests)
        report = rt.last_canary
        assert report is not None and not report.passed
        assert "ilad" in report.regressions
        assert report.metrics["ilad"]["delta"] < 0
        kinds = [e["kind"] for e in rt.telemetry().event_log.snapshot()]
        assert "canary_regression" in kinds
        assert rt.alert_sink.snapshot(kind="canary_regression")
        health = rt.health()
        assert health.status == DEGRADED
        assert any("canary regression" in reason for reason in health.reasons)
        # the verdict rides out in telemetry too
        snapshot = rt.telemetry().snapshot()
        assert snapshot["audit"]["last_canary"]["passed"] is False
        assert snapshot["health"]["status"] == DEGRADED


def test_clean_publish_passes_canary_and_stays_healthy():
    m = 60
    requests = [
        Request(quality=_quality(72, m), k=4, mode="sample", seed=i) for i in range(8)
    ]
    with _canary_runtime(m) as rt:
        _serve(rt, requests)
        rt.publish(_factors(74, m, 6))  # a healthy retrain
        _serve(rt, requests)
        report = rt.last_canary
        assert report is not None and report.passed
        assert report.regressions == ()
        kinds = [e["kind"] for e in rt.telemetry().event_log.snapshot()]
        assert "canary" in kinds and "canary_regression" not in kinds
        assert rt.alert_sink.snapshot(kind="canary_regression") == []
        assert rt.health().status == HEALTHY


def test_canary_report_comparison_rules():
    from repro.serving.health import _compare_canary_metric

    # lower-is-worse metrics regress on a relative drop
    entry, regressed = _compare_canary_metric("ilad", 1.0, 0.8, tolerance=0.1)
    assert regressed and entry["delta"] == pytest.approx(-0.2)
    _, regressed = _compare_canary_metric("ilad", 1.0, 0.95, tolerance=0.1)
    assert not regressed
    _, regressed = _compare_canary_metric("quality_mass", 1.0, 1.5, tolerance=0.1)
    assert not regressed  # improvements never regress
    # log-probability is negative-valued: relative to |baseline|
    _, regressed = _compare_canary_metric("log_probability", -10.0, -12.0, 0.1)
    assert regressed
    # latency regresses on a relative rise, but a zero baseline
    # (manual clocks, cold histograms) is incomparable
    _, regressed = _compare_canary_metric("latency_p99_s", 0.010, 0.012, 0.1)
    assert regressed
    _, regressed = _compare_canary_metric("latency_p99_s", 0.0, 5.0, 0.1)
    assert not regressed
    # degraded rate regresses on an absolute rise
    _, regressed = _compare_canary_metric("degraded_rate", 0.0, 0.15, tolerance=0.1)
    assert regressed
    # missing sides are incomparable, never regressions
    entry, regressed = _compare_canary_metric("ilad", None, 1.0, tolerance=0.1)
    assert not regressed and entry["delta"] is None
    report = CanaryReport(baseline_version=0, version=1, audits=8, tolerance=0.1)
    assert report.passed and report.to_dict()["regressions"] == []


# ----------------------------------------------------------------------
# Drift through the runtime
# ----------------------------------------------------------------------
def test_quality_drift_fires_through_the_runtime():
    m = 50
    catalog = ItemCatalog(_factors(81, m, 5))
    config = ServingConfig(
        workers=0, clock=ManualClock(), audit_rate=1.0, drift_window=8
    )
    with ServingRuntime(catalog, config=config) as rt:
        # 16 stationary audits fill reference + current: no drift
        _serve(rt, [Request(quality=_quality(81, m), k=3, mode="map")] * 16)
        assert rt.telemetry().event_log.snapshot(kind="drift") == []
        # the quality model breaks: scores quadruple
        _serve(
            rt, [Request(quality=_quality(81, m, scale=4.0), k=3, mode="map")] * 8
        )
        drift_events = rt.telemetry().event_log.snapshot(kind="drift")
        assert drift_events and drift_events[0]["metric"] == "quality_mass"
        assert drift_events[0]["shift"] > 0
        assert rt.alert_sink.snapshot(kind="drift")
        health = rt.health()
        assert health.status == DEGRADED
        assert any("drift" in reason for reason in health.reasons)
        assert rt.telemetry().snapshot()["audit"]["drift"]["quality_mass"]["fired"] >= 1


def test_stationary_traffic_never_drifts():
    m = 50
    catalog = ItemCatalog(_factors(82, m, 5))
    config = ServingConfig(
        workers=0, clock=ManualClock(), audit_rate=1.0, drift_window=8
    )
    with ServingRuntime(catalog, config=config) as rt:
        requests = [
            Request(quality=_quality(100 + i, m), k=3, mode="map") for i in range(48)
        ]
        _serve(rt, requests)
        assert rt.telemetry().event_log.snapshot(kind="drift") == []
        assert rt.health().status == HEALTHY


# ----------------------------------------------------------------------
# runtime.health() end to end
# ----------------------------------------------------------------------
def test_runtime_health_goes_unhealthy_on_slo_breach():
    m = 40
    clock = ManualClock()
    alerts = []
    catalog = ItemCatalog(_factors(91, m, 5))
    config = ServingConfig(
        workers=0,
        clock=clock,
        slos=(SLO("avail", "availability", target=0.99, window=60, fast_window=10),),
        alert_sink=alerts.append,
    )
    with ServingRuntime(catalog, config=config) as rt:
        assert rt.health().status == HEALTHY
        futures = rt.submit_many(
            [Request(quality=_quality(91, m), k=3, mode="map", deadline=0.5)] * 4
        )
        clock.advance(1.0)  # every deadline expires before dispatch
        rt.flush()
        for future in futures:
            with pytest.raises(DeadlineExceeded):
                future.result()
        health = rt.health()
        assert health.status == UNHEALTHY and not health.healthy
        assert health.severity == 2
        assert any("avail" in reason for reason in health.reasons)
        assert (health.slos[0]["breached"], health.slos[0]["name"]) == (True, "avail")
        assert [alert["kind"] for alert in alerts] == ["slo_burn"]
        # the gauge and the text exposition carry the verdict
        snapshot = rt.telemetry().snapshot()
        assert snapshot["health"]["status"] == UNHEALTHY
        text = rt.telemetry().to_text()
        assert 'serving_health_info{status="unhealthy"} 1' in text
        assert "serving_health_status 2" in text
        assert "slo_burn_rate" in text


def test_health_status_round_trip():
    status = HealthStatus(status=HEALTHY, reasons=("all good",), slos=({"name": "x"},))
    assert status.healthy and status.severity == 0
    assert status.to_dict() == {
        "status": "healthy",
        "reasons": ["all good"],
        "slos": [{"name": "x"}],
    }
