"""Integration tests exercising the full pipeline across modules.

These are the "does the system hang together" checks: dataset generation
through kernel learning, training, evaluation and analysis — the same
path the paper's experiments take, at miniature scale.
"""

import numpy as np
import pytest

from repro.data import (
    GroundSetSampler,
    anime_like,
    mine_diversity_pairs,
    movielens_like,
)
from repro.dpp import (
    DiversityKernelConfig,
    DiversityKernelLearner,
    KDPP,
    greedy_map,
)
from repro.eval import evaluate_model, target_count_probabilities
from repro.eval.probability_analysis import ground_set_kernel_np
from repro.losses import BPRCriterion, make_lkp_variant
from repro.models import MFRecommender, NeuMFRecommender
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def pipeline():
    dataset = movielens_like(scale=0.4).filter_min_interactions(6)
    split = dataset.split(np.random.default_rng(0))
    pairs = mine_diversity_pairs(
        split, set_size=4, pairs_per_user=2, mode="monotonous",
        rng=np.random.default_rng(1),
    )
    learner = DiversityKernelLearner(
        dataset.num_items, DiversityKernelConfig(rank=8, epochs=5, lr=0.03, seed=2)
    )
    learner.fit(pairs)
    return dataset, split, learner.kernel()


def test_full_lkp_pipeline_beats_untrained_model(pipeline):
    dataset, split, kernel = pipeline
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0)
    untrained = evaluate_model(model, split)["Nd@10"]
    criterion = make_lkp_variant("NPS", diversity_kernel=kernel, k=4, n=4)
    trainer = Trainer(
        model, criterion, split,
        TrainConfig(epochs=30, lr=0.1, batch_size=32, patience=0, seed=3),
    )
    trainer.fit()
    trained = trainer.evaluate()["Nd@10"]
    assert trained > untrained + 0.05


def test_lkp_learns_ranking_interpretation(pipeline):
    """After training, target subsets should dominate the k-DPP mass
    (the Figure 4 phenomenon)."""
    dataset, split, kernel = pipeline
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=1)
    criterion = make_lkp_variant("PS", diversity_kernel=kernel, k=4, n=4)
    trainer = Trainer(
        model, criterion, split,
        TrainConfig(epochs=25, lr=0.1, batch_size=32, patience=0, seed=4),
    )
    trainer.fit()
    sampler = GroundSetSampler(split, k=4, n=4, mode="S")
    instances = sampler.instances(np.random.default_rng(5))[:10]
    report = target_count_probabilities(model, kernel, instances)
    assert report.mean_probability[-1] > 10 * report.uniform
    # Monotone in expectation across the extreme groups.
    assert report.mean_probability[-1] > report.mean_probability[0]


def test_neumf_rework_trains_with_sigmoid_quality(pipeline):
    dataset, split, kernel = pipeline
    model = NeuMFRecommender(dataset.num_users, dataset.num_items, dim=8, mlp_layers=(16, 8), rng=2)
    criterion = make_lkp_variant("NPS", diversity_kernel=kernel, k=4, n=4)
    trainer = Trainer(
        model, criterion, split,
        TrainConfig(epochs=8, lr=0.02, batch_size=32, patience=0, seed=5),
    )
    result = trainer.fit()
    losses = result.losses()
    assert losses[-1] < losses[0]


def test_greedy_map_generates_diverse_list_from_trained_kernel(pipeline):
    """The MAP-inference path: build a user's personalized kernel over
    candidate items and extract a diversified top-k."""
    dataset, split, kernel = pipeline
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=3)
    Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=10, lr=0.05, batch_size=64, patience=0, seed=6),
    ).fit()
    user = int(split.users_with_min_train(4)[0])
    scores = model.full_scores()[user]
    known = np.fromiter(split.known_set(user), dtype=np.int64)
    candidates = np.setdiff1d(np.arange(dataset.num_items), known)[:30]
    quality = np.exp(np.clip(scores[candidates], -12, 12))
    local = quality[:, None] * kernel[np.ix_(candidates, candidates)] * quality[None, :]
    local += 1e-8 * np.eye(candidates.shape[0])
    chosen_local = greedy_map(local, 5)
    chosen = [int(candidates[i]) for i in chosen_local]
    assert len(set(chosen)) == 5
    # The greedy-MAP list should cover at least as many categories as the
    # pure top-5 by score.
    top_by_score = candidates[np.argsort(-scores[candidates])[:5]]
    map_breadth = len(dataset.categories_of(np.asarray(chosen)))
    score_breadth = len(dataset.categories_of(top_by_score))
    assert map_breadth >= score_breadth - 1


def test_sliding_window_instances_reflect_sequence_correlation():
    """S-mode windows on the anime-like dataset should contain more
    category-coherent targets than R-mode windows (the property that
    makes S beat R on quality in the paper)."""
    dataset = anime_like(scale=0.4).filter_min_interactions(6)
    split = dataset.split(np.random.default_rng(0))

    def mean_coherence(mode):
        sampler = GroundSetSampler(split, k=4, n=4, mode=mode)
        instances = sampler.instances(np.random.default_rng(1))
        overlaps = []
        for instance in instances:
            cats = [dataset.item_categories[int(i)] for i in instance.targets]
            pairwise = [
                1 if cats[i] & cats[j] else 0
                for i in range(4) for j in range(i + 1, 4)
            ]
            overlaps.append(np.mean(pairwise))
        return np.mean(overlaps)

    assert mean_coherence("S") > mean_coherence("R")


def test_instance_kernel_round_trip_consistency(pipeline):
    """The differentiable kernel and the numpy analysis kernel agree."""
    dataset, split, kernel = pipeline
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=4)
    criterion = make_lkp_variant("PS", diversity_kernel=kernel, k=3, n=3)
    instance = criterion.make_sampler(split).instances(np.random.default_rng(2))[0]
    tensor_kernel = criterion.instance_kernel(model, model.representations(), instance)
    numpy_kernel = ground_set_kernel_np(model, kernel, instance, jitter=criterion.jitter)
    assert np.allclose(tensor_kernel.data, numpy_kernel, rtol=1e-9)
    # And the exact distribution built from it normalizes.
    dpp = KDPP(numpy_kernel, 3, validate=False)
    assert np.isclose(sum(dpp.enumerate_probabilities().values()), 1.0)
