"""Tests for the dataset container, filtering and splitting."""

import numpy as np
import pytest

from repro.data import InteractionDataset


def _tiny_dataset(rows, num_users=4, num_items=5, num_categories=3):
    categories = [frozenset({i % num_categories}) for i in range(num_items)]
    return InteractionDataset(
        name="tiny",
        num_users=num_users,
        num_items=num_items,
        interactions=np.asarray(rows, dtype=np.int64),
        item_categories=categories,
        num_categories=num_categories,
    )


def test_constructor_validation():
    with pytest.raises(ValueError, match="user, item, time"):
        _tiny_dataset([[0, 0]])
    with pytest.raises(ValueError, match="user id"):
        _tiny_dataset([[9, 0, 0]])
    with pytest.raises(ValueError, match="item id"):
        _tiny_dataset([[0, 9, 0]])
    with pytest.raises(ValueError, match="item_categories"):
        InteractionDataset("x", 2, 3, np.empty((0, 3), dtype=np.int64), [frozenset()], 1)
    with pytest.raises(ValueError, match="out-of-range category"):
        InteractionDataset(
            "x", 1, 1, np.empty((0, 3), dtype=np.int64), [frozenset({5})], 2
        )


def test_stats_and_density():
    ds = _tiny_dataset([[0, 0, 0], [0, 1, 1], [1, 2, 0]])
    stats = ds.stats()
    assert stats.num_interactions == 3
    assert np.isclose(stats.density, 3 / 20)
    assert "tiny" in stats.as_row()


def test_user_histories_ordered_and_deduplicated():
    ds = _tiny_dataset([[0, 2, 5], [0, 1, 3], [0, 2, 9], [1, 0, 0]])
    histories = ds.user_histories()
    assert histories[0].tolist() == [1, 2]  # time order, dedup keeps first
    assert histories[1].tolist() == [0]
    assert histories[2].tolist() == []


def test_categories_of_unions_labels():
    ds = _tiny_dataset([[0, 0, 0]])
    assert ds.categories_of(np.array([0, 1, 2])) == {0, 1, 2}
    assert ds.categories_of(np.array([0, 3])) == {0}


def test_filter_min_interactions_is_iterative():
    # User 2 depends on item 3, which only survives if user 2 survives:
    # filtering must cascade.
    rows = []
    for t in range(3):
        rows.append([0, 0, t])
        rows.append([0, 1, t + 10])
        rows.append([1, 0, t])
        rows.append([1, 1, t + 10])
    rows.append([2, 3, 0])  # single interaction: user 2 and item 3 both die
    ds = _tiny_dataset(rows)
    filtered = ds.filter_min_interactions(2)
    assert filtered.num_users == 2
    assert filtered.num_items == 2
    # ids re-densified
    assert filtered.interactions[:, 0].max() < filtered.num_users
    assert filtered.interactions[:, 1].max() < filtered.num_items


def test_filter_preserves_item_category_alignment():
    rows = [[0, 4, t] for t in range(3)] + [[1, 4, t] for t in range(3)]
    rows += [[0, 2, t + 5] for t in range(3)] + [[1, 2, t + 5] for t in range(3)]
    ds = _tiny_dataset(rows)
    filtered = ds.filter_min_interactions(2)
    kept_original_items = sorted({2, 4})
    for new_id, old_id in enumerate(kept_original_items):
        assert filtered.item_categories[new_id] == ds.item_categories[old_id]


def test_split_fractions_and_disjointness():
    rng = np.random.default_rng(0)
    rows = [[u, i, i] for u in range(4) for i in range(5)]
    ds = _tiny_dataset(rows)
    split = ds.split(np.random.default_rng(1))
    for user in range(4):
        train = set(map(int, split.train[user]))
        val = set(map(int, split.val[user]))
        test = set(map(int, split.test[user]))
        assert train | val | test == set(range(5))
        assert not (train & val) and not (train & test) and not (val & test)
        assert len(train) >= 1
        assert len(test) >= 1


def test_split_fraction_validation():
    ds = _tiny_dataset([[0, 0, 0]])
    with pytest.raises(ValueError):
        ds.split(np.random.default_rng(0), train_fraction=0.0)
    with pytest.raises(ValueError):
        ds.split(np.random.default_rng(0), train_fraction=0.9, val_fraction=0.2)


def test_split_preserves_temporal_order_within_train():
    rows = [[0, i, i] for i in range(10)]
    ds = InteractionDataset(
        "seq",
        1,
        10,
        np.asarray(rows, dtype=np.int64),
        [frozenset({0}) for _ in range(10)],
        1,
    )
    split = ds.split(np.random.default_rng(2))
    train = split.train[0]
    # Item ids equal their timestamps here, so order must be increasing.
    assert (np.diff(train) > 0).all()


def test_train_matrix_and_pairs():
    rows = [[0, 0, 0], [0, 1, 1], [1, 2, 0], [1, 3, 1], [1, 4, 2]]
    ds = _tiny_dataset(rows)
    split = ds.split(np.random.default_rng(3))
    matrix = split.train_matrix()
    pairs = split.train_pairs()
    assert matrix.shape == (4, 5)
    assert matrix.nnz == pairs.shape[0]
    for user, item in pairs:
        assert matrix[user, item] == 1.0


def test_sample_negatives_excludes_known():
    rows = [[0, i, i] for i in range(4)]
    ds = _tiny_dataset(rows)
    split = ds.split(np.random.default_rng(4))
    rng = np.random.default_rng(5)
    known = split.known_set(0)
    for _ in range(20):
        negatives = split.sample_negatives(0, 1, rng)
        assert int(negatives[0]) not in known


def test_sample_negatives_exhaustion_error():
    rows = [[0, i, i] for i in range(5)]
    ds = _tiny_dataset(rows)
    split = ds.split(np.random.default_rng(6))
    available = 5 - len(split.known_set(0))
    with pytest.raises(ValueError, match="cannot sample"):
        split.sample_negatives(0, available + 1, np.random.default_rng(7))


def test_users_with_min_train():
    rows = [[0, i, i] for i in range(5)] + [[1, 0, 0]]
    ds = _tiny_dataset(rows)
    split = ds.split(np.random.default_rng(8))
    heavy = split.users_with_min_train(2)
    assert 0 in heavy
    assert 1 not in heavy
