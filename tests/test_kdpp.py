"""Tests for the k-DPP and standard-DPP distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.dpp import (
    KDPP,
    StandardDPP,
    elementary_symmetric_polynomials,
    log_kdpp_probability,
    validate_psd_kernel,
)


def _psd(seed, n, ridge=0.2):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n))
    return x @ x.T + ridge * np.eye(n)


def test_validate_psd_kernel_accepts_and_rejects():
    validate_psd_kernel(_psd(0, 4))
    with pytest.raises(ValueError, match="square"):
        validate_psd_kernel(np.ones((2, 3)))
    with pytest.raises(ValueError, match="symmetric"):
        validate_psd_kernel(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError, match="semi-definite"):
        validate_psd_kernel(np.array([[1.0, 2.0], [2.0, 1.0]]))


def test_kdpp_k_range_validation():
    kernel = _psd(1, 4)
    with pytest.raises(ValueError):
        KDPP(kernel, 0)
    with pytest.raises(ValueError):
        KDPP(kernel, 5)


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 8), st.integers(0, 2**32 - 1), st.data())
def test_probabilities_normalize(n, seed, data):
    k = data.draw(st.integers(1, n))
    dpp = KDPP(_psd(seed, n), k)
    table = dpp.enumerate_probabilities()
    assert np.isclose(sum(table.values()), 1.0, rtol=1e-8)
    assert all(p >= 0 for p in table.values())


def test_normalizer_is_esp_of_eigenvalues():
    kernel = _psd(2, 6)
    lam = np.linalg.eigvalsh(kernel)
    for k in (1, 3, 5):
        dpp = KDPP(kernel, k)
        assert np.isclose(dpp.normalizer, elementary_symmetric_polynomials(lam, k), rtol=1e-9)


def test_subset_probability_checks():
    dpp = KDPP(_psd(3, 5), 3)
    with pytest.raises(ValueError, match="size"):
        dpp.subset_probability([0, 1])
    with pytest.raises(ValueError, match="duplicates"):
        dpp.subset_probability([0, 0, 1])
    with pytest.raises(ValueError, match="indices"):
        dpp.subset_probability([0, 1, 9])


def test_enumerate_refuses_large_ground_sets():
    dpp = KDPP(np.eye(20), 3)
    with pytest.raises(ValueError, match="16"):
        dpp.enumerate_probabilities()


def test_diagonal_kernel_closed_form():
    # With a diagonal kernel, P(S) = prod q_S / e_k(q).
    q = np.array([1.0, 2.0, 3.0, 4.0])
    dpp = KDPP(np.diag(q), 2)
    expected = (q[1] * q[3]) / elementary_symmetric_polynomials(q, 2)
    assert np.isclose(dpp.subset_probability([1, 3]), expected)


def test_diverse_subsets_beat_redundant_ones():
    # Two near-duplicate items vs two orthogonal ones with equal quality.
    kernel = np.array(
        [
            [1.0, 0.98, 0.0],
            [0.98, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    dpp = KDPP(kernel + 1e-9 * np.eye(3), 2)
    assert dpp.subset_probability([0, 2]) > dpp.subset_probability([0, 1])


def test_kdpp_sampler_matches_exact_distribution():
    kernel = np.array([[1.0, 0.3, 0.1], [0.3, 0.8, 0.2], [0.1, 0.2, 0.6]])
    dpp = KDPP(kernel, 2)
    exact = dpp.enumerate_probabilities()
    rng = np.random.default_rng(0)
    counts = {key: 0 for key in exact}
    draws = 6000
    for _ in range(draws):
        counts[frozenset(dpp.sample(rng))] += 1
    for key, probability in exact.items():
        assert abs(counts[key] / draws - probability) < 0.025


def test_kdpp_sample_size_and_distinctness():
    dpp = KDPP(_psd(4, 7), 4)
    rng = np.random.default_rng(1)
    for _ in range(20):
        s = dpp.sample(rng)
        assert len(s) == 4
        assert len(set(s)) == 4
        assert all(0 <= i < 7 for i in s)


def test_standard_dpp_normalizer_and_probability():
    kernel = _psd(5, 5)
    dpp = StandardDPP(kernel)
    assert np.isclose(dpp.log_normalizer, np.linalg.slogdet(kernel + np.eye(5))[1])
    # All-subset probabilities must sum to 1 (including the empty set).
    total = 0.0
    import itertools

    for r in range(6):
        for combo in itertools.combinations(range(5), r):
            total += dpp.subset_probability(combo)
    assert np.isclose(total, 1.0, rtol=1e-8)


def test_standard_dpp_sampling_cardinality_distribution():
    # E[|S|] = sum lambda_i / (1 + lambda_i).
    kernel = _psd(6, 6)
    lam = np.linalg.eigvalsh(kernel)
    expected = (lam / (1 + lam)).sum()
    dpp = StandardDPP(kernel)
    rng = np.random.default_rng(2)
    sizes = [len(dpp.sample(rng)) for _ in range(2000)]
    assert abs(np.mean(sizes) - expected) < 0.2


def test_log_kdpp_probability_matches_exact():
    kernel = _psd(7, 6)
    dpp = KDPP(kernel, 3)
    subset = [1, 2, 5]
    value = log_kdpp_probability(Tensor(kernel), subset, 3)
    assert np.isclose(value.item(), dpp.log_subset_probability(subset), rtol=1e-9)


def test_log_kdpp_probability_size_check():
    with pytest.raises(ValueError):
        log_kdpp_probability(Tensor(_psd(8, 5)), [0, 1], 3)
