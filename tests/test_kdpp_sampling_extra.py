"""Additional distributional and edge-case tests for DPP machinery.

These complement test_kdpp.py with statistical checks that pin the exact
semantics of the distributions (marginals, conditioning on cardinality)
rather than just normalization.
"""

import numpy as np

from repro.dpp import KDPP, StandardDPP, esp_table


def _psd(seed, n, ridge=0.3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n))
    return x @ x.T + ridge * np.eye(n)


def test_kdpp_is_standard_dpp_conditioned_on_cardinality():
    """P_kDPP(S) must equal P_DPP(S | |S| = k) — the defining property."""
    kernel = _psd(0, 5)
    k = 2
    kdpp = KDPP(kernel, k)
    dpp = StandardDPP(kernel)
    import itertools

    mass_at_k = sum(
        dpp.subset_probability(c) for c in itertools.combinations(range(5), k)
    )
    for combo in itertools.combinations(range(5), k):
        conditioned = dpp.subset_probability(combo) / mass_at_k
        assert np.isclose(kdpp.subset_probability(combo), conditioned, rtol=1e-8)


def test_kdpp_singleton_marginals_from_sampler():
    """Empirical item frequencies must match exact singleton marginals."""
    kernel = _psd(1, 5)
    k = 2
    kdpp = KDPP(kernel, k)
    exact = kdpp.enumerate_probabilities()
    marginals = np.zeros(5)
    for subset, probability in exact.items():
        for item in subset:
            marginals[item] += probability
    rng = np.random.default_rng(2)
    counts = np.zeros(5)
    draws = 5000
    for _ in range(draws):
        for item in kdpp.sample(rng):
            counts[item] += 1
    assert np.allclose(counts / draws, marginals, atol=0.03)


def test_kdpp_k_equals_ground_size():
    kernel = _psd(3, 4)
    kdpp = KDPP(kernel, 4)
    assert np.isclose(kdpp.subset_probability([0, 1, 2, 3]), 1.0)
    assert kdpp.sample(np.random.default_rng(0)) is not None


def test_kdpp_k_equals_one_proportional_to_diagonal():
    kernel = np.diag([1.0, 2.0, 7.0])
    kdpp = KDPP(kernel, 1)
    assert np.isclose(kdpp.subset_probability([2]), 0.7)
    assert np.isclose(kdpp.subset_probability([0]), 0.1)


def test_esp_table_matches_kdpp_eigenvector_selection_invariant():
    """The ESP-table column used by the sampler equals the normalizer."""
    kernel = _psd(4, 6)
    kdpp = KDPP(kernel, 3)
    table = esp_table(kdpp.eigenvalues, 3)
    assert np.isclose(table[3, -1], kdpp.normalizer, rtol=1e-10)


def test_rank_deficient_kernel_sampling():
    """Rank-2 kernel with k = 2 still samples valid subsets."""
    v = np.random.default_rng(5).normal(size=(6, 2))
    kernel = v @ v.T
    kdpp = KDPP(kernel, 2)
    rng = np.random.default_rng(6)
    for _ in range(10):
        s = kdpp.sample(rng)
        assert len(set(s)) == 2


def test_quality_scaling_shifts_mass_toward_high_quality_items():
    """Raising one item's quality must raise its k-DPP marginal —
    the mechanism by which LkP promotes relevant items."""
    base = _psd(7, 5, ridge=1.0)
    diag = np.sqrt(np.diagonal(base))
    diversity = base / np.outer(diag, diag)

    def marginal_of_item0(quality0):
        quality = np.array([quality0, 1.0, 1.0, 1.0, 1.0])
        kernel = quality[:, None] * diversity * quality[None, :]
        kdpp = KDPP(kernel + 1e-9 * np.eye(5), 2, validate=False)
        return sum(
            p for s, p in kdpp.enumerate_probabilities().items() if 0 in s
        )

    assert marginal_of_item0(3.0) > marginal_of_item0(1.0) > marginal_of_item0(0.3)
