"""Tests for kernel assembly, the E-variant Gaussian kernel, greedy MAP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, check_gradient
from repro.dpp import (
    exp_quality,
    gaussian_similarity_kernel,
    gaussian_similarity_kernel_np,
    greedy_map,
    greedy_map_reference,
    identity_quality,
    quality_diversity_kernel,
    quality_diversity_kernel_np,
    sigmoid_quality,
)


def test_quality_diversity_matches_matrix_form():
    rng = np.random.default_rng(0)
    q = np.abs(rng.normal(size=5)) + 0.1
    k = rng.normal(size=(5, 5))
    k = k @ k.T
    expected = np.diag(q) @ k @ np.diag(q)
    assert np.allclose(quality_diversity_kernel_np(q, k), expected)
    tensor_version = quality_diversity_kernel(Tensor(q), Tensor(k))
    assert np.allclose(tensor_version.data, expected)


def test_quality_diversity_gradient_through_quality():
    rng = np.random.default_rng(1)
    k = rng.normal(size=(4, 4))
    k = k @ k.T + 0.5 * np.eye(4)

    def fn(q):
        kernel = quality_diversity_kernel(q.exp(), Tensor(k))
        return kernel.sum()

    check_gradient(fn, rng.normal(size=4))


def test_quality_diversity_shape_validation():
    with pytest.raises(ValueError, match="vector"):
        quality_diversity_kernel(Tensor(np.ones((2, 2))), Tensor(np.eye(2)))
    with pytest.raises(ValueError, match="does not match"):
        quality_diversity_kernel(Tensor(np.ones(3)), Tensor(np.eye(2)))


def test_gaussian_kernel_properties():
    rng = np.random.default_rng(2)
    emb = rng.normal(size=(6, 3))
    kernel = gaussian_similarity_kernel_np(emb, bandwidth=1.5, jitter=0.0)
    assert np.allclose(np.diagonal(kernel), 1.0)
    assert np.allclose(kernel, kernel.T)
    assert (np.linalg.eigvalsh(kernel) > -1e-9).all()
    # Closer embeddings -> larger similarity.
    a = gaussian_similarity_kernel_np(np.array([[0.0], [0.1]]), 1.0, jitter=0.0)[0, 1]
    b = gaussian_similarity_kernel_np(np.array([[0.0], [2.0]]), 1.0, jitter=0.0)[0, 1]
    assert a > b


def test_gaussian_kernel_tensor_matches_numpy_and_grads():
    rng = np.random.default_rng(3)
    emb = rng.normal(size=(5, 4))
    t = gaussian_similarity_kernel(Tensor(emb), bandwidth=0.9, jitter=1e-6)
    n = gaussian_similarity_kernel_np(emb, bandwidth=0.9, jitter=1e-6)
    assert np.allclose(t.data, n)
    check_gradient(
        lambda e: (gaussian_similarity_kernel(e, bandwidth=0.9) * Tensor(np.ones((4, 4)))).sum(),
        rng.normal(size=(4, 2)),
        rtol=1e-3,
    )


def test_gaussian_kernel_validation():
    with pytest.raises(ValueError):
        gaussian_similarity_kernel(Tensor(np.ones(3)))
    with pytest.raises(ValueError):
        gaussian_similarity_kernel(Tensor(np.ones((2, 2))), bandwidth=0.0)


def test_quality_transforms():
    scores = Tensor(np.array([-100.0, 0.0, 100.0]))
    q = exp_quality(scores, clip=10.0)
    assert np.allclose(q.data, [np.exp(-10), 1.0, np.exp(10)])
    s = sigmoid_quality(scores)
    assert (s.data > 0).all() and (s.data <= 1.0001).all()
    i = identity_quality(Tensor(np.array([-1.0, 2.0])))
    assert (i.data > 0).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 9), st.integers(1, 4), st.integers(0, 2**32 - 1))
def test_greedy_map_matches_reference(n, k, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n))
    kernel = x @ x.T + 0.3 * np.eye(n)
    assert greedy_map(kernel, k) == greedy_map_reference(kernel, k)


def test_greedy_map_candidates_restriction():
    kernel = np.diag([1.0, 10.0, 5.0, 0.1])
    chosen = greedy_map(kernel, 2, candidates=np.array([0, 2, 3]))
    assert 1 not in chosen
    assert chosen[0] == 2  # highest available diagonal


def test_greedy_map_validation():
    with pytest.raises(ValueError):
        greedy_map(np.eye(3), 0)
    with pytest.raises(ValueError):
        greedy_map(np.eye(3), 4)


def test_greedy_map_prefers_diverse_items():
    # Items 0/1 nearly identical; greedy should pick 0 (or 1) then 2.
    kernel = np.array(
        [
            [1.0, 0.99, 0.05],
            [0.99, 1.0, 0.05],
            [0.05, 0.05, 0.9],
        ]
    )
    chosen = greedy_map(kernel, 2)
    assert set(chosen) in ({0, 2}, {1, 2})
