"""Property-based tests of the LkP objective's mathematical invariants.

Each test pins a property the paper's construction relies on:

* the PS objective is invariant to uniform quality rescaling (only
  relative relevance within a ground set matters);
* the target subset's probability is monotone in the targets' scores;
* the exclusion term of Eq. 10 strictly decreases P(S-) after a step;
* with an identity diversity kernel the log-probability decomposes into
  the Eq. 5 form (sum of 2 log q over targets minus log Z).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.dpp import KDPP, elementary_symmetric_polynomials
from repro.dpp.kdpp import log_kdpp_probability


def _diversity(seed, m):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(m, m))
    kernel = x @ x.T + 0.5 * np.eye(m)
    diag = np.sqrt(np.diagonal(kernel))
    return kernel / np.outer(diag, diag)


def _kernel(quality, diversity):
    return quality[:, None] * diversity * quality[None, :]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 10.0))
def test_ps_objective_invariant_to_uniform_quality_scaling(seed, scale):
    rng = np.random.default_rng(seed)
    m, k = 6, 3
    diversity = _diversity(seed, m)
    quality = np.exp(rng.normal(size=m))
    subset = list(range(k))
    base = KDPP(_kernel(quality, diversity) + 1e-10 * np.eye(m), k, validate=False)
    scaled = KDPP(
        _kernel(scale * quality, diversity) + 1e-10 * np.eye(m), k, validate=False
    )
    assert np.isclose(
        base.subset_probability(subset), scaled.subset_probability(subset), rtol=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_target_probability_monotone_in_target_quality(seed):
    rng = np.random.default_rng(seed)
    m, k = 6, 3
    diversity = _diversity(seed + 1, m)
    quality = np.exp(rng.normal(size=m) * 0.3)
    subset = list(range(k))

    def probability(boost):
        q = quality.copy()
        q[:k] *= boost
        return KDPP(
            _kernel(q, diversity) + 1e-10 * np.eye(m), k, validate=False
        ).subset_probability(subset)

    assert probability(2.0) > probability(1.0) > probability(0.5)


def test_eq5_decomposition_identity_kernel():
    """log P(S) = sum_{i in S} 2 log q_i - log e_k(q^2) when K = I."""
    rng = np.random.default_rng(0)
    m, k = 7, 3
    quality = np.exp(rng.normal(size=m) * 0.5)
    kernel = np.diag(quality**2)
    subset = [0, 2, 5]
    value = log_kdpp_probability(Tensor(kernel), subset, k)
    expected = 2 * np.log(quality[subset]).sum() - np.log(
        elementary_symmetric_polynomials(quality**2, k)
    )
    assert np.isclose(value.item(), expected, rtol=1e-9)


def test_eq5_diversity_term_additivity():
    """log det(L_S) = sum 2 log q_i + log det(K_S) — Eq. 5's split."""
    rng = np.random.default_rng(1)
    m = 6
    diversity = _diversity(2, m)
    quality = np.exp(rng.normal(size=m) * 0.4)
    kernel = _kernel(quality, diversity)
    subset = [1, 3, 4]
    logdet_l = np.linalg.slogdet(kernel[np.ix_(subset, subset)])[1]
    logdet_k = np.linalg.slogdet(diversity[np.ix_(subset, subset)])[1]
    assert np.isclose(
        logdet_l, 2 * np.log(quality[subset]).sum() + logdet_k, rtol=1e-9
    )


def test_exclusion_gradient_decreases_negative_probability():
    """One gradient step on -log(1 - P(S-)) must lower P(S-)."""
    rng = np.random.default_rng(3)
    m, k = 6, 3
    diversity = _diversity(4, m)
    scores = Tensor(rng.normal(size=m) * 0.1, requires_grad=True)

    def negative_probability():
        quality = scores.exp()
        kernel = quality.reshape(m, 1) * Tensor(diversity) * quality.reshape(1, m)
        kernel = kernel + Tensor(1e-8 * np.eye(m))
        return log_kdpp_probability(kernel, [3, 4, 5], k).exp()

    before = negative_probability()
    loss = -(1.0 - before).log()
    loss.backward()
    scores.data -= 0.1 * scores.grad
    after = negative_probability()
    assert after.item() < before.item()


def test_diverse_target_sets_rank_higher_at_equal_quality():
    """The diversity-ranking interpretation: with equal quality scores,
    the target set spanning lower-similarity items wins (Figure 1's
    diversity comparison)."""
    diversity = np.eye(4)
    diversity[0, 1] = diversity[1, 0] = 0.95  # items 0,1 near-duplicates
    diversity[2, 3] = diversity[3, 2] = 0.05  # items 2,3 nearly orthogonal
    quality = np.ones(4)
    kdpp = KDPP(_kernel(quality, diversity) + 1e-10 * np.eye(4), 2, validate=False)
    assert kdpp.subset_probability([2, 3]) > kdpp.subset_probability([0, 1])
