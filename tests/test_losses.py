"""Tests for every optimization criterion."""

import numpy as np
import pytest

from repro.data import movielens_like
from repro.dpp import KDPP, category_jaccard_kernel
from repro.eval.probability_analysis import ground_set_kernel_np
from repro.losses import (
    BCECriterion,
    BPRCriterion,
    GCMCNLLCriterion,
    LkPCriterion,
    Set2SetRankCriterion,
    SetRankCriterion,
    make_lkp_variant,
)
from repro.losses.lkp import LKP_VARIANTS
from repro.models import GCMCRecommender, MFRecommender


@pytest.fixture(scope="module")
def world():
    dataset = movielens_like(scale=0.35).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    kernel = category_jaccard_kernel(dataset.item_categories, scale=0.8, floor=0.2)
    diag = np.sqrt(np.diagonal(kernel))
    kernel = kernel / np.outer(diag, diag)
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0)
    return dataset, split, kernel, model


def test_bpr_loss_value_and_direction(world):
    dataset, split, _, model = world
    criterion = BPRCriterion()
    batch = criterion.make_sampler(split).instances(np.random.default_rng(1))[:16]
    reprs = model.representations()
    loss = criterion.batch_loss(model, reprs, batch)
    # With near-zero random embeddings, -log sigmoid(0) = log 2.
    assert abs(loss.item() - np.log(2)) < 0.1
    # Raising positive scores lowers the loss.
    for user, pos, _ in batch:
        model.user_embedding.weight.data[user] += 0.0  # no-op placeholder
    users = np.array([b[0] for b in batch])
    positives = np.array([b[1] for b in batch])
    model.item_embedding.weight.data[positives] += (
        model.user_embedding.weight.data[users] * 10
    )
    better = criterion.batch_loss(model, model.representations(), batch)
    assert better.item() < loss.item()


def test_bce_loss_matches_manual(world):
    dataset, split, _, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=1)
    criterion = BCECriterion()
    batch = [(0, 1, 1.0), (0, 2, 0.0)]
    reprs = model.representations()
    loss = criterion.batch_loss(model, reprs, batch)
    scores = model.full_scores()
    p = 1 / (1 + np.exp(-np.array([scores[0, 1], scores[0, 2]])))
    manual = -(np.log(p[0]) + np.log(1 - p[1])) / 2
    assert np.isclose(loss.item(), manual, rtol=1e-8)


def test_setrank_is_softmax_cross_entropy(world):
    dataset, split, _, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=2)
    criterion = SetRankCriterion(num_negatives=3)
    batch = [(0, 1, np.array([2, 3, 4]))]
    reprs = model.representations()
    loss = criterion.batch_loss(model, reprs, batch)
    scores = model.full_scores()[0, [1, 2, 3, 4]]
    manual = -(scores[0] - np.log(np.exp(scores).sum()))
    assert np.isclose(loss.item(), manual, rtol=1e-8)


def test_setrank_validation():
    with pytest.raises(ValueError):
        SetRankCriterion(num_negatives=0)


def test_set2setrank_components_positive(world):
    dataset, split, _, model = world
    criterion = Set2SetRankCriterion(k=3, n=3)
    batch = criterion.make_sampler(split).instances(np.random.default_rng(3))[:8]
    loss = criterion.batch_loss(model, model.representations(), batch)
    assert loss.item() > 0
    loss.backward()  # must be differentiable end to end


def test_gcmc_nll_requires_level_logits(world):
    dataset, split, _, model = world
    criterion = GCMCNLLCriterion()
    with pytest.raises(TypeError):
        criterion.batch_loss(model, model.representations(), [(0, 1, 1.0)])
    gcmc = GCMCRecommender(dataset.num_users, dataset.num_items, split.train_matrix(), dim=8, rng=3)
    loss = criterion.batch_loss(gcmc, gcmc.representations(), [(0, 1, 1.0), (0, 2, 0.0)])
    assert np.isfinite(loss.item())


# ----------------------------------------------------------------------
# LkP
# ----------------------------------------------------------------------
def test_lkp_variant_factory_flags():
    kernel = np.eye(4)
    ps = make_lkp_variant("PS", diversity_kernel=kernel, k=2, n=2)
    assert not ps.use_negative_set and ps.sampling == "S" and ps.kernel_mode == "pretrained"
    npr = make_lkp_variant("NPR", diversity_kernel=kernel, k=2, n=2)
    assert npr.use_negative_set and npr.sampling == "R"
    pse = make_lkp_variant("PSE", k=2, n=2)
    assert pse.kernel_mode == "embedding"
    npse = make_lkp_variant("NPSE", k=2, n=2)
    assert npse.use_negative_set and npse.kernel_mode == "embedding"
    with pytest.raises(ValueError):
        make_lkp_variant("XXX")


def test_lkp_constructor_validation():
    with pytest.raises(ValueError, match="n == k"):
        LkPCriterion(k=3, n=4, use_negative_set=True, diversity_kernel=np.eye(4))
    with pytest.raises(ValueError, match="pre-learned"):
        LkPCriterion(kernel_mode="pretrained", diversity_kernel=None)
    with pytest.raises(ValueError, match="square"):
        LkPCriterion(diversity_kernel=np.ones((2, 3)))
    with pytest.raises(ValueError, match="sampling"):
        LkPCriterion(sampling="Q", diversity_kernel=np.eye(3))
    with pytest.raises(ValueError, match="normalization"):
        LkPCriterion(diversity_kernel=np.eye(3), normalization="bogus")


def test_lkp_kernel_size_must_match_dataset(world):
    dataset, split, _, _ = world
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=np.eye(4))
    with pytest.raises(ValueError, match="covers"):
        criterion.make_sampler(split)


def test_lkp_instance_loss_matches_exact_kdpp(world):
    """The differentiable loss must equal -log P_kDPP(S+) exactly."""
    dataset, split, kernel, model = world
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=kernel, jitter=1e-6)
    instance = criterion.make_sampler(split).instances(np.random.default_rng(4))[0]
    loss = criterion.instance_loss(model, model.representations(), instance)
    numpy_kernel = ground_set_kernel_np(model, kernel, instance, jitter=1e-6)
    dpp = KDPP(numpy_kernel, 3, validate=False)
    assert np.isclose(loss.item(), -dpp.log_subset_probability([0, 1, 2]), rtol=1e-7)


def test_lkp_nps_adds_exclusion_term(world):
    dataset, split, kernel, model = world
    ps = LkPCriterion(k=3, n=3, diversity_kernel=kernel)
    nps = LkPCriterion(k=3, n=3, diversity_kernel=kernel, use_negative_set=True)
    instance = ps.make_sampler(split).instances(np.random.default_rng(5))[0]
    reprs = model.representations()
    loss_ps = ps.instance_loss(model, reprs, instance)
    loss_nps = nps.instance_loss(model, reprs, instance)
    numpy_kernel = ground_set_kernel_np(model, kernel, instance, jitter=1e-6)
    dpp = KDPP(numpy_kernel, 3, validate=False)
    p_neg = dpp.subset_probability([3, 4, 5])
    assert np.isclose(loss_nps.item(), loss_ps.item() - np.log(1 - p_neg), rtol=1e-6)


def test_lkp_training_signal_raises_target_probability(world):
    """A few gradient steps on one instance must raise P(S+)."""
    dataset, split, kernel, _ = world
    from repro.autodiff import optim

    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=5)
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=kernel)
    instance = criterion.make_sampler(split).instances(np.random.default_rng(6))[0]

    def target_probability():
        numpy_kernel = ground_set_kernel_np(model, kernel, instance)
        return KDPP(numpy_kernel, 3, validate=False).subset_probability([0, 1, 2])

    before = target_probability()
    optimizer = optim.Adam(model.parameters(), lr=0.05)
    for _ in range(30):
        loss = criterion.instance_loss(model, model.representations(), instance)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert target_probability() > before


@pytest.mark.parametrize("code", LKP_VARIANTS)
def test_all_variants_produce_finite_differentiable_losses(world, code):
    dataset, split, kernel, model = world
    criterion = make_lkp_variant(code, diversity_kernel=kernel, k=3, n=3)
    batch = criterion.make_sampler(split).instances(np.random.default_rng(7))[:4]
    model.zero_grad()
    loss = criterion.batch_loss(model, model.representations(), batch)
    assert np.isfinite(loss.item())
    loss.backward()
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    assert grads and all(np.all(np.isfinite(g)) for g in grads)


def test_lkp_standard_dpp_normalization_option(world):
    dataset, split, kernel, model = world
    criterion = LkPCriterion(
        k=3, n=3, diversity_kernel=kernel, normalization="standard_dpp"
    )
    instance = criterion.make_sampler(split).instances(np.random.default_rng(8))[0]
    loss = criterion.instance_loss(model, model.representations(), instance)
    # Standard-DPP probability of a specific subset is smaller than the
    # k-DPP's (the normalizer covers all 2^m subsets), so the loss is larger.
    kdpp_loss = LkPCriterion(k=3, n=3, diversity_kernel=kernel).instance_loss(
        model, model.representations(), instance
    )
    assert loss.item() > kdpp_loss.item()


def test_lkp_names_follow_paper():
    kernel = np.eye(4)
    assert make_lkp_variant("PS", diversity_kernel=kernel).name == "LkP-PS"
    assert make_lkp_variant("NPSE").name == "LkP-NPSE"
    assert LkPCriterion(diversity_kernel=kernel, name="custom").name == "custom"
