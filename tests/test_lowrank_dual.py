"""Dual-kernel (low-rank) fast path: parity with the dense DPP stack.

Every serving-side computation the dual path rewrites — spectra, ``e_k``
normalizers, subset (log-)probabilities, exact k-DPP / standard-DPP
sampling, greedy MAP — is pinned here against the dense O(M³) reference
on random low-rank kernels, including rank-deficient and duplicate-row
edge cases.  Samples are compared under a *shared seeded RNG*: both
paths are built to consume the identical uniform stream, so a seeded
dual draw must return exactly the dense draw.
"""

import numpy as np
import pytest

from repro.data import GroundSetInstance, GroundSetSampler, movielens_like
from repro.dpp import (
    KDPP,
    DiversityKernelConfig,
    DiversityKernelLearner,
    LowRankKernel,
    StandardDPP,
    elementary_symmetric_polynomials,
    greedy_map,
    log_esp,
)
from repro.eval import ground_set_kernel_np, target_count_probabilities
from repro.losses import LkPCriterion
from repro.models import MFRecommender


def _factors(seed: int, m: int, r: int, quality_spread: float = 0.5) -> np.ndarray:
    """Eq. 2-shaped factors: unit-row diversity scaled by exp qualities."""
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    quality = np.exp(rng.normal(scale=quality_spread, size=m))
    return quality[:, None] * diversity


# ----------------------------------------------------------------------
# LowRankKernel representation
# ----------------------------------------------------------------------
def test_lowrank_kernel_dense_and_gram_rows():
    factors = _factors(0, 20, 6)
    kernel = LowRankKernel(factors)
    assert kernel.ground_size == 20
    assert kernel.rank == 6
    dense = kernel.dense()
    np.testing.assert_allclose(kernel.diagonal(), np.diagonal(dense), rtol=1e-12)
    items = np.array([3, 11, 7])
    np.testing.assert_allclose(
        kernel.gram_rows(items), dense[np.ix_(items, items)], rtol=1e-12
    )


def test_lowrank_kernel_validation():
    with pytest.raises(ValueError):
        LowRankKernel(np.ones(3))
    with pytest.raises(ValueError):
        LowRankKernel(np.array([[1.0, np.nan]]))
    with pytest.raises(ValueError):
        LowRankKernel.from_quality_diversity(np.ones(3), np.ones((4, 2)))


def test_from_quality_diversity_matches_dense_assembly():
    rng = np.random.default_rng(1)
    quality = np.exp(rng.normal(size=15))
    diversity_factors = rng.normal(size=(15, 4))
    kernel = LowRankKernel.from_quality_diversity(quality, diversity_factors)
    expected = (
        quality[:, None]
        * (diversity_factors @ diversity_factors.T)
        * quality[None, :]
    )
    np.testing.assert_allclose(kernel.dense(), expected, rtol=1e-12)


def test_lifted_eigenvectors_are_orthonormal_eigenvectors():
    factors = _factors(2, 30, 5)
    kernel = LowRankKernel(factors)
    eigenvalues, _ = kernel.eigh_dual()
    lifted = kernel.lift_eigenvectors()
    np.testing.assert_allclose(
        lifted.T @ lifted, np.eye(lifted.shape[1]), atol=1e-10
    )
    np.testing.assert_allclose(
        kernel.dense() @ lifted, lifted * eigenvalues, atol=1e-9
    )
    with pytest.raises(ValueError):
        LowRankKernel(np.zeros((4, 2))).lift_eigenvectors(np.array([0]))


# ----------------------------------------------------------------------
# Spectrum / normalizer / probability parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,m,r,k", [(0, 25, 6, 3), (1, 40, 8, 5), (2, 12, 12, 4)])
def test_dual_spectrum_and_normalizer_match_dense(seed, m, r, k):
    factors = _factors(seed, m, r)
    dense = KDPP(factors @ factors.T, k, validate=False)
    dual = KDPP.from_factors(factors, k)
    assert dual.is_lowrank and not dense.is_lowrank
    # The r dual eigenvalues are the nonzero part of the dense spectrum.
    np.testing.assert_allclose(
        np.sort(dense.eigenvalues)[-r:], np.sort(dual.eigenvalues), rtol=1e-8
    )
    assert np.max(np.sort(dense.eigenvalues)[: m - r], initial=0.0) < 1e-8
    assert np.isclose(dense.log_normalizer, dual.log_normalizer, rtol=1e-10)
    assert np.isclose(dense.normalizer, dual.normalizer, rtol=1e-8)
    # e_k of the dual spectrum IS Eq. 6's Z_k.
    assert np.isclose(
        dual.normalizer,
        elementary_symmetric_polynomials(dual.eigenvalues, k),
        rtol=1e-8,
    )


@pytest.mark.parametrize("seed,m,r,k", [(3, 25, 6, 3), (4, 40, 8, 5)])
def test_subset_log_probabilities_match_dense(seed, m, r, k):
    factors = _factors(seed, m, r)
    dense = KDPP(factors @ factors.T, k, validate=False)
    dual = KDPP.from_factors(factors, k)
    rng = np.random.default_rng(seed)
    for _ in range(10):
        subset = rng.choice(m, size=k, replace=False)
        assert np.isclose(
            dense.log_subset_probability(subset),
            dual.log_subset_probability(subset),
            rtol=1e-8,
            atol=1e-10,
        )
        assert np.isclose(
            dense.subset_probability(subset),
            dual.subset_probability(subset),
            rtol=1e-8,
        )


def test_oversized_subsets_have_zero_determinant():
    factors = _factors(5, 20, 3)
    dual = StandardDPP.from_factors(factors)
    # Any subset larger than the rank is singular: exactly -inf / 0.
    assert dual.subset_log_determinant([0, 1, 2, 3]) == -np.inf
    assert dual.subset_probability([0, 1, 2, 3]) == 0.0


def test_from_factors_rejects_rank_below_k():
    factors = _factors(6, 20, 3)
    with pytest.raises(ValueError, match="rank"):
        KDPP.from_factors(factors, 4)
    with pytest.raises(ValueError):
        KDPP.from_factors(factors, 0)


def test_standard_dpp_dual_normalizer_and_probabilities():
    factors = _factors(7, 30, 5)
    dense = StandardDPP(factors @ factors.T, validate=False)
    dual = StandardDPP.from_factors(factors)
    assert np.isclose(dense.log_normalizer, dual.log_normalizer, rtol=1e-10)
    rng = np.random.default_rng(7)
    for size in (0, 1, 3, 5):
        subset = rng.choice(30, size=size, replace=False)
        assert np.isclose(
            dense.subset_probability(subset),
            dual.subset_probability(subset),
            rtol=1e-7,
            atol=1e-15,
        )


def test_dual_enumeration_sums_to_one():
    factors = _factors(8, 10, 4)
    dual = KDPP.from_factors(factors, 3)
    table = dual.enumerate_probabilities()
    assert np.isclose(sum(table.values()), 1.0, rtol=1e-8)


# ----------------------------------------------------------------------
# Sampling parity under a shared seeded RNG
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,m,r,k", [(0, 30, 6, 4), (1, 50, 10, 5), (2, 18, 5, 5)])
def test_kdpp_samples_match_dense_under_fixed_rng(seed, m, r, k):
    factors = _factors(seed, m, r)
    dense = KDPP(factors @ factors.T, k, validate=False)
    dual = KDPP.from_factors(factors, k)
    for draw in range(25):
        dense_sample = dense.sample(np.random.default_rng(1000 * seed + draw))
        dual_sample = dual.sample(np.random.default_rng(1000 * seed + draw))
        assert dense_sample == dual_sample
        assert len(set(dual_sample)) == k


@pytest.mark.parametrize("seed,m,r", [(0, 25, 5), (1, 40, 8)])
def test_standard_dpp_samples_match_dense_under_fixed_rng(seed, m, r):
    factors = _factors(seed, m, r)
    dense = StandardDPP(factors @ factors.T, validate=False)
    dual = StandardDPP.from_factors(factors)
    for draw in range(25):
        dense_sample = dense.sample(np.random.default_rng(2000 * seed + draw))
        dual_sample = dual.sample(np.random.default_rng(2000 * seed + draw))
        assert dense_sample == dual_sample
        assert len(dual_sample) <= r


def test_dual_kdpp_sampler_matches_exact_distribution():
    """Beyond stream parity: dual samples follow the exact k-DPP law."""
    factors = _factors(9, 8, 4, quality_spread=0.3)
    dual = KDPP.from_factors(factors, 2)
    exact = dual.enumerate_probabilities()
    rng = np.random.default_rng(9)
    counts: dict[frozenset, int] = {}
    draws = 4000
    for _ in range(draws):
        key = frozenset(dual.sample(rng))
        counts[key] = counts.get(key, 0) + 1
    for subset, probability in exact.items():
        observed = counts.get(subset, 0) / draws
        assert abs(observed - probability) < 0.03


def test_duplicate_rows_never_cosampled():
    factors = _factors(10, 12, 4)
    factors[7] = factors[3]  # exact duplicate: det of any set with both is 0
    dense = KDPP(factors @ factors.T, 3, validate=False)
    dual = KDPP.from_factors(factors, 3)
    assert dual.subset_probability([3, 7, 1]) == 0.0
    rng = np.random.default_rng(10)
    for _ in range(50):
        sample = dual.sample(rng)
        assert not {3, 7} <= set(sample)
    for draw in range(10):
        assert dense.sample(np.random.default_rng(draw)) == dual.sample(
            np.random.default_rng(draw)
        )


# ----------------------------------------------------------------------
# Greedy MAP factor path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,m,r,k", [(0, 30, 6, 5), (1, 60, 10, 8), (2, 15, 4, 4)])
def test_greedy_map_factor_path_matches_dense(seed, m, r, k):
    factors = _factors(seed, m, r)
    dense_selection = greedy_map(factors @ factors.T, k)
    dual_selection = greedy_map(LowRankKernel(factors), k)
    assert dense_selection == dual_selection


def test_greedy_map_factor_path_with_candidates_and_rank_stop():
    factors = _factors(3, 20, 3)
    candidates = np.array([1, 4, 9, 13, 17])
    assert greedy_map(LowRankKernel(factors), 3, candidates=candidates) == greedy_map(
        factors @ factors.T, 3, candidates=candidates
    )
    # Requesting more items than the rank supports: the marginal-gain
    # floor stops the selection early on both paths, identically.
    assert greedy_map(LowRankKernel(factors), 6) == greedy_map(factors @ factors.T, 6)


# ----------------------------------------------------------------------
# Log-space probabilities (determinant underflow fix)
# ----------------------------------------------------------------------
def test_tiny_determinants_survive_in_log_space():
    # det(L_S) = 1e-600 underflows float64; the slogdet path keeps the
    # exact ratio det(L_S) / Z_k, which is a perfectly ordinary number.
    kdpp = KDPP(1e-120 * np.eye(10), 5, validate=False)
    assert kdpp.subset_determinant([0, 1, 2, 3, 4]) == 0.0  # the det itself underflows
    assert np.isfinite(kdpp.log_subset_probability([0, 1, 2, 3, 4]))
    assert np.isclose(kdpp.subset_probability([0, 1, 2, 3, 4]), 1.0 / 252.0, rtol=1e-9)
    table = kdpp.enumerate_probabilities()
    assert np.isclose(sum(table.values()), 1.0, rtol=1e-9)


def test_tiny_determinants_standard_dpp():
    scale = 1e-150
    dpp = StandardDPP(scale * np.eye(6), validate=False)
    expected_log = 3 * np.log(scale) - dpp.log_normalizer
    assert np.isclose(dpp.log_subset_probability([0, 1, 2]), expected_log, rtol=1e-12)
    assert np.isclose(
        dpp.subset_probability([0, 1, 2]), np.exp(expected_log), rtol=1e-9
    )


def test_huge_spectra_survive_in_log_space():
    kdpp = KDPP(1e150 * np.eye(8), 3, validate=False)
    assert np.isclose(kdpp.subset_probability([0, 1, 2]), 1.0 / 56.0, rtol=1e-9)
    sample = kdpp.sample(np.random.default_rng(0))
    assert len(set(sample)) == 3


def test_log_esp_matches_direct_and_handles_rank():
    rng = np.random.default_rng(11)
    eigenvalues = rng.uniform(0.1, 3.0, size=12)
    for k in (1, 3, 7):
        assert np.isclose(
            log_esp(eigenvalues, k),
            np.log(elementary_symmetric_polynomials(eigenvalues, k)),
            rtol=1e-10,
        )
    assert log_esp(eigenvalues, 0) == 0.0
    assert log_esp(np.array([1.0, 2.0, 0.0]), 3) == -np.inf
    with pytest.raises(ValueError):
        log_esp(eigenvalues, 13)


# ----------------------------------------------------------------------
# Factor plumbing: learner, LkP criterion, probability analysis
# ----------------------------------------------------------------------
def test_factors_normalized_gram_matches_kernel():
    learner = DiversityKernelLearner(
        30, DiversityKernelConfig(rank=6, epochs=2, seed=0)
    )
    rng = np.random.default_rng(0)
    pairs = [
        (rng.choice(30, size=3, replace=False), rng.choice(30, size=3, replace=False))
        for _ in range(8)
    ]
    learner.fit(pairs)
    for normalize in ("correlation", "none"):
        factors = learner.factors_normalized(normalize=normalize)
        np.testing.assert_allclose(
            factors @ factors.T, learner.kernel(normalize=normalize), atol=1e-10
        )
    with pytest.raises(ValueError):
        learner.factors_normalized(normalize="bogus")


def _lkp_world(seed: int = 0):
    rng = np.random.default_rng(seed)
    num_items, num_users, r = 40, 6, 5
    diversity_factors = rng.normal(size=(num_items, r))
    diversity_factors /= np.linalg.norm(diversity_factors, axis=1, keepdims=True)
    diversity_kernel = diversity_factors @ diversity_factors.T
    model = MFRecommender(num_users, num_items, dim=6, rng=seed)
    batch = []
    for b in range(6):
        items = rng.choice(num_items, size=6, replace=False)
        batch.append(
            GroundSetInstance(user=b % num_users, targets=items[:3], negatives=items[3:])
        )
    return diversity_kernel, diversity_factors, model, batch


@pytest.mark.parametrize("backend", ["batched", "reference"])
def test_lkp_criterion_factor_mode_matches_dense(backend):
    diversity_kernel, diversity_factors, model, batch = _lkp_world()
    shared = dict(k=3, n=3, use_negative_set=True, backend=backend)
    dense_criterion = LkPCriterion(diversity_kernel=diversity_kernel, **shared)
    factor_criterion = LkPCriterion(diversity_factors=diversity_factors, **shared)
    representations = model.representations()
    dense_loss = dense_criterion.batch_loss(model, representations, batch)
    factor_loss = factor_criterion.batch_loss(model, representations, batch)
    assert np.isclose(dense_loss.item(), factor_loss.item(), rtol=1e-10)

    dense_loss.backward()
    dense_grads = [p.grad.copy() for p in model.parameters()]
    for p in model.parameters():
        p.grad = None
    factor_loss.backward()
    for dense_grad, p in zip(dense_grads, model.parameters()):
        np.testing.assert_allclose(dense_grad, p.grad, rtol=1e-8, atol=1e-12)


def test_lkp_criterion_factor_validation():
    with pytest.raises(ValueError, match="either"):
        LkPCriterion(
            diversity_kernel=np.eye(4), diversity_factors=np.ones((4, 2))
        )
    with pytest.raises(ValueError, match="needs the pre-learned"):
        LkPCriterion()
    with pytest.raises(ValueError):
        LkPCriterion(diversity_factors=np.ones(4))


def test_lkp_make_sampler_checks_factor_item_count():
    dataset = movielens_like(scale=0.2).filter_min_interactions(4)
    split = dataset.split(np.random.default_rng(0))
    criterion = LkPCriterion(
        k=2, n=2, diversity_factors=np.ones((dataset.num_items + 3, 2))
    )
    with pytest.raises(ValueError, match="covers"):
        criterion.make_sampler(split)


def test_probability_analysis_accepts_lowrank_kernel():
    dataset = movielens_like(scale=0.3).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    rng = np.random.default_rng(1)
    factors = rng.normal(size=(dataset.num_items, 6))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    lowrank = LowRankKernel(factors)
    dense = factors @ factors.T
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=6, rng=0)
    sampler = GroundSetSampler(split, k=3, n=3, mode="S")
    instances = sampler.instances(np.random.default_rng(2))[:6]
    for instance in instances[:3]:
        np.testing.assert_allclose(
            ground_set_kernel_np(model, lowrank, instance),
            ground_set_kernel_np(model, dense, instance),
            rtol=1e-10,
        )
    dense_report = target_count_probabilities(model, dense, instances)
    lowrank_report = target_count_probabilities(model, lowrank, instances)
    np.testing.assert_allclose(
        dense_report.mean_probability, lowrank_report.mean_probability, rtol=1e-8
    )


def test_wide_factors_more_columns_than_items():
    # r > M is legal (e.g. a small candidate list under rank-32 factors):
    # rank(L) <= M, the extra dual eigenvalues are exactly zero.
    rng = np.random.default_rng(12)
    factors = rng.normal(size=(5, 8))
    dense = StandardDPP(factors @ factors.T, validate=False)
    dual = StandardDPP.from_factors(factors)
    assert np.isclose(dense.log_normalizer, dual.log_normalizer, rtol=1e-10)
    for draw in range(15):
        assert dense.sample(np.random.default_rng(draw)) == dual.sample(
            np.random.default_rng(draw)
        )
    dense_k = KDPP(factors @ factors.T, 3, validate=False)
    dual_k = KDPP.from_factors(factors, 3)
    assert np.isclose(
        dense_k.log_subset_probability([0, 2, 4]),
        dual_k.log_subset_probability([0, 2, 4]),
        rtol=1e-9,
    )
    for draw in range(15):
        assert dense_k.sample(np.random.default_rng(draw)) == dual_k.sample(
            np.random.default_rng(draw)
        )


def test_linear_domain_accessors_saturate_to_inf():
    # Past float64 range the linear-domain conveniences degrade to inf
    # (as the pre-log-space det/e_k code did) instead of raising.
    kdpp = KDPP(1e150 * np.eye(8), 3, validate=False)
    assert kdpp.normalizer == np.inf
    assert kdpp.subset_determinant([0, 1, 2]) == np.inf
    assert np.isfinite(kdpp.log_normalizer)


def test_dense_kdpp_rejects_rank_below_k():
    with pytest.raises(ValueError, match="rank"):
        KDPP(np.diag([1.0, 1.0, 0.0, 0.0, 0.0]), 3, validate=False)
