"""Tests for metrics (including the paper-pinned F composition) and eval."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset
from repro.eval import (
    category_coverage,
    evaluate_scores,
    f_score,
    intra_list_distance,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
)


def test_recall_known_values():
    assert recall_at_n(np.array([1, 2, 3]), {1, 9}) == 0.5
    assert recall_at_n(np.array([1, 2]), {1, 2}) == 1.0
    assert recall_at_n(np.array([5]), {1}) == 0.0
    with pytest.raises(ValueError):
        recall_at_n(np.array([1]), set())


def test_precision_known_values():
    assert precision_at_n(np.array([1, 2, 3, 4]), {1, 2}) == 0.5
    assert precision_at_n(np.array([]), {1}) == 0.0


def test_ndcg_perfect_and_worst():
    assert np.isclose(ndcg_at_n(np.array([1, 2]), {1, 2}), 1.0)
    assert ndcg_at_n(np.array([3, 4]), {1, 2}) == 0.0
    # A hit at rank 2 discounts by 1/log2(3).
    expected = (1 / np.log2(3)) / (1 / np.log2(2))
    assert np.isclose(ndcg_at_n(np.array([9, 1]), {1}), expected)


def test_ndcg_ideal_uses_min_of_list_and_relevant():
    # One relevant item, list of 3: ideal DCG is a single top hit.
    assert np.isclose(ndcg_at_n(np.array([1, 8, 9]), {1}), 1.0)


def test_category_coverage_multilabel():
    categories = [frozenset({0, 1}), frozenset({1}), frozenset({2})]
    assert np.isclose(category_coverage(np.array([0, 1]), categories, 4), 0.5)
    assert np.isclose(category_coverage(np.array([0, 2]), categories, 4), 0.75)
    with pytest.raises(ValueError):
        category_coverage(np.array([0]), categories, 0)


def test_f_score_pins_paper_table2_values():
    # Beauty / PR row of Table II: Re@5=0.0788, Nd@5=0.0808, CC@5=0.0579,
    # printed F@5=0.0671.
    assert abs(f_score(0.0788, 0.0808, 0.0579) - 0.0671) < 2e-4
    # ML / PS row: Re@5=0.0869, Nd@5=0.0952, CC@5=0.3346 -> F@5=0.1431.
    assert abs(f_score(0.0869, 0.0952, 0.3346) - 0.1431) < 2e-4
    # Anime / PS row: Re@5=0.0975, Nd@5=0.1560, CC@5=0.3359 -> F@5=0.1841.
    assert abs(f_score(0.0975, 0.1560, 0.3359) - 0.1841) < 2e-4


def test_f_score_degenerate():
    assert f_score(0.0, 0.0, 0.0) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
)
def test_f_score_bounded_by_components(recall, ndcg, coverage):
    value = f_score(recall, ndcg, coverage)
    quality = 0.5 * (recall + ndcg)
    assert 0.0 <= value <= 1.0 + 1e-12
    assert value <= max(quality, coverage) + 1e-12


def test_intra_list_distance():
    features = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 0.0]])
    assert np.isclose(intra_list_distance(np.array([0, 1]), features), 5.0)
    assert intra_list_distance(np.array([0]), features) == 0.0


def _eval_fixture():
    # 2 users, 6 items, crafted splits.
    interactions = []
    for item in range(6):
        interactions.append([0, item, item])
        interactions.append([1, item, item])
    dataset = InteractionDataset(
        "fix",
        2,
        6,
        np.asarray(interactions, dtype=np.int64),
        [frozenset({i % 3}) for i in range(6)],
        3,
    )
    split = dataset.split(np.random.default_rng(0))
    return dataset, split


def test_evaluate_scores_shape_validation():
    dataset, split = _eval_fixture()
    with pytest.raises(ValueError):
        evaluate_scores(np.zeros((3, 3)), split)
    with pytest.raises(ValueError):
        evaluate_scores(np.zeros((2, 6)), split, target="bogus")


def test_evaluate_scores_perfect_oracle():
    dataset, split = _eval_fixture()
    scores = np.full((2, 6), -10.0)
    for user in range(2):
        for item in split.test[user]:
            scores[user, item] = 10.0
    result = evaluate_scores(scores, split, cutoffs=(5,))
    assert np.isclose(result["Re@5"], 1.0)
    assert np.isclose(result["Nd@5"], 1.0)


def test_evaluate_never_recommends_known_items():
    dataset, split = _eval_fixture()
    # Give train items the HIGHEST scores: they must still be excluded,
    # so the oracle test items (second highest) win.
    scores = np.zeros((2, 6))
    for user in range(2):
        for item in split.train[user]:
            scores[user, item] = 100.0
        for item in split.test[user]:
            scores[user, item] = 50.0
    result = evaluate_scores(scores, split, cutoffs=(5,))
    assert result["Re@5"] == 1.0


def test_evaluate_val_target_excludes_train_only():
    dataset, split = _eval_fixture()
    scores = np.zeros((2, 6))
    for user in range(2):
        for item in split.val[user]:
            scores[user, item] = 10.0
    if all(split.val[user].shape[0] for user in range(2)):
        result = evaluate_scores(scores, split, cutoffs=(5,), target="val")
        assert result["Re@5"] == 1.0


def test_metrics_monotone_in_cutoff():
    dataset, split = _eval_fixture()
    rng = np.random.default_rng(1)
    scores = rng.normal(size=(2, 6))
    result = evaluate_scores(scores, split, cutoffs=(1, 3, 5))
    assert result["Re@1"] <= result["Re@3"] <= result["Re@5"]
    assert result["CC@1"] <= result["CC@3"] <= result["CC@5"]


def _reference_evaluate(scores, split, cutoffs, target):
    """The pre-vectorization evaluate_scores: per-user sets + top_k_indices."""
    from repro.eval.evaluate import METRIC_FAMILIES, EvalResult
    from repro.eval.metrics import category_coverage, f_score, ndcg_at_n, recall_at_n
    from repro.utils.topk import top_k_indices

    dataset = split.dataset
    held_out = split.test if target == "test" else split.val
    max_cutoff = max(cutoffs)
    sums = {f"{family}@{n}": 0.0 for family in METRIC_FAMILIES for n in cutoffs}
    evaluated = 0
    for user in range(dataset.num_users):
        relevant = set(map(int, held_out[user]))
        if not relevant:
            continue
        if target == "test":
            exclude = np.fromiter(split.known_set(user), dtype=np.int64)
        else:
            exclude = np.fromiter(split.train_set(user), dtype=np.int64)
        top = top_k_indices(scores[user], max_cutoff, exclude=exclude)
        evaluated += 1
        for n in cutoffs:
            head = top[:n]
            recall = recall_at_n(head, relevant)
            ndcg = ndcg_at_n(head, relevant)
            coverage = category_coverage(
                head, dataset.item_categories, dataset.num_categories
            )
            sums[f"Re@{n}"] += recall
            sums[f"Nd@{n}"] += ndcg
            sums[f"CC@{n}"] += coverage
            sums[f"F@{n}"] += f_score(recall, ndcg, coverage)
    metrics = {key: value / evaluated for key, value in sums.items()}
    return EvalResult(metrics=metrics, num_users_evaluated=evaluated)


@pytest.mark.parametrize("target", ["test", "val"])
def test_evaluate_scores_matches_per_user_reference(target):
    # The vectorized exclusion scatter + single argpartition pass must
    # reproduce the per-user top_k_indices protocol metric for metric,
    # including users whose rankable catalog is smaller than the cutoff.
    from repro.data import movielens_like

    dataset = movielens_like(scale=0.3).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    rng = np.random.default_rng(3)
    scores = rng.normal(size=(dataset.num_users, dataset.num_items))
    cutoffs = (5, 10, dataset.num_items)
    fast = evaluate_scores(scores, split, cutoffs=cutoffs, target=target)
    slow = _reference_evaluate(scores, split, cutoffs=cutoffs, target=target)
    assert fast.num_users_evaluated == slow.num_users_evaluated
    assert fast.metrics.keys() == slow.metrics.keys()
    for key, value in slow.metrics.items():
        assert np.isclose(fast.metrics[key], value, rtol=0, atol=1e-12), key


@pytest.mark.parametrize("target", ["test", "val"])
def test_evaluate_scores_matches_reference_with_tied_scores(target):
    # Integer-valued scorers (popularity counts, vote tallies) tie
    # constantly, including across the cutoff boundary; the vectorized
    # path must resolve every tie exactly as the per-user reference does.
    from repro.data import movielens_like

    dataset = movielens_like(scale=0.3).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    rng = np.random.default_rng(4)
    scores = rng.integers(0, 4, size=(dataset.num_users, dataset.num_items)).astype(
        np.float64
    )
    cutoffs = (5, 20)
    fast = evaluate_scores(scores, split, cutoffs=cutoffs, target=target)
    slow = _reference_evaluate(scores, split, cutoffs=cutoffs, target=target)
    for key, value in slow.metrics.items():
        assert np.isclose(fast.metrics[key], value, rtol=0, atol=1e-12), key
