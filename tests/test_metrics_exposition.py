"""Prometheus text-exposition contracts for the metrics primitives.

A scrape endpoint that emits malformed exposition fails silently at
the collector — these tests pin the wire format itself:

1. **Label escaping** — backslashes, double quotes and newlines in
   label *values* are escaped per the exposition spec (label *names*
   are validated at registration, so they never need escaping).
2. **Determinism** — two registries populated in different orders
   expose byte-identical text: families sort by name, a family's
   series render in stable (first-use) order, and label values render
   in declared labelname order regardless of kwargs order.
3. **Histogram consistency** — cumulative buckets end in an implicit
   ``+Inf`` bucket whose count equals ``_count``, ``_sum`` is the sum
   of observations, and bucket counts are monotonically nondecreasing.
"""

import math

from repro.serving import MetricsRegistry


# ----------------------------------------------------------------------
# Label escaping
# ----------------------------------------------------------------------
def test_label_values_escape_quotes_backslashes_newlines():
    registry = MetricsRegistry()
    counter = registry.counter(
        "requests_total", "by source", labelnames=("source",)
    )
    counter.labels(source='say "hi"\\path\nnext').inc()
    text = registry.to_text()
    assert r'source="say \"hi\"\\path\nnext"' in text
    # the escaped line is still one physical line
    (sample_line,) = [
        line for line in text.splitlines() if line.startswith("requests_total{")
    ]
    assert sample_line.endswith("} 1")


def test_plain_and_labeled_series_roundtrip():
    registry = MetricsRegistry()
    registry.counter("plain_total", "no labels").inc(2.5)
    gauge = registry.gauge("depth", "queue depth", labelnames=("queue",))
    gauge.labels(queue="main").set(7)
    text = registry.to_text()
    assert "# TYPE plain_total counter" in text
    assert "plain_total 2.5" in text
    assert "# TYPE depth gauge" in text
    assert 'depth{queue="main"} 7' in text
    assert text.endswith("\n")  # exposition ends with a newline


# ----------------------------------------------------------------------
# Deterministic ordering
# ----------------------------------------------------------------------
def _populate(registry: MetricsRegistry, reverse: bool) -> None:
    names = ["beta_total", "alpha_total"]
    if reverse:
        names = list(reversed(names))
    for name in names:
        registry.counter(name, f"help for {name}").inc()
    histogram = registry.histogram(
        "latency_seconds", "latency", labelnames=("stage",), buckets=[0.1, 1.0]
    )
    stages = ["resolve", "eigh"] if reverse else ["resolve", "eigh"]
    for stage in stages:
        histogram.labels(stage=stage).observe(0.05)


def test_registry_exposition_is_deterministic_across_insertion_order():
    first = MetricsRegistry()
    second = MetricsRegistry()
    _populate(first, reverse=False)
    _populate(second, reverse=True)
    assert first.to_text() == second.to_text()
    # families sort by name even though beta registered before alpha
    text = first.to_text()
    assert text.index("alpha_total") < text.index("beta_total")


def test_label_values_render_in_declared_order():
    registry = MetricsRegistry()
    counter = registry.counter(
        "ops_total", "", labelnames=("method", "status")
    )
    # kwargs given in the opposite order of the declaration
    counter.labels(status="200", method="GET").inc()
    assert 'ops_total{method="GET", status="200"} 1' in registry.to_text()


# ----------------------------------------------------------------------
# Histogram exposition consistency
# ----------------------------------------------------------------------
def test_histogram_inf_bucket_sum_and_count_are_consistent():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "stage_seconds", "per-stage", buckets=[0.01, 0.1, 1.0]
    )
    observations = [0.005, 0.05, 0.5, 5.0, 5.0]
    for value in observations:
        histogram.observe(value)
    text = registry.to_text()
    lines = text.splitlines()
    bucket_counts = []
    bounds = []
    for line in lines:
        if line.startswith("stage_seconds_bucket"):
            bound = line.split('le="')[1].split('"')[0]
            bounds.append(bound)
            bucket_counts.append(int(line.rsplit(" ", 1)[1]))
    # implicit +Inf terminates the ladder and equals _count
    assert bounds == ["0.01", "0.1", "1", "+Inf"]
    assert bucket_counts == [1, 2, 3, 5]
    assert all(
        later >= earlier
        for earlier, later in zip(bucket_counts, bucket_counts[1:])
    )
    (count_line,) = [l for l in lines if l.startswith("stage_seconds_count")]
    assert int(count_line.rsplit(" ", 1)[1]) == len(observations)
    (sum_line,) = [l for l in lines if l.startswith("stage_seconds_sum")]
    assert float(sum_line.rsplit(" ", 1)[1]) == sum(observations)


def test_labeled_histogram_buckets_carry_both_labels():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "io_seconds", "", labelnames=("op",), buckets=[1.0]
    )
    histogram.labels(op="read").observe(0.5)
    text = registry.to_text()
    assert 'io_seconds_bucket{op="read", le="1"} 1' in text
    assert 'io_seconds_bucket{op="read", le="+Inf"} 1' in text
    assert 'io_seconds_sum{op="read"} 0.5' in text
    assert 'io_seconds_count{op="read"} 1' in text


def test_snapshot_buckets_match_exposition():
    """The JSON snapshot and the text exposition must agree — one
    source of truth for the cumulative ladder."""
    registry = MetricsRegistry()
    histogram = registry.histogram("t_seconds", "", buckets=[0.1, 1.0])
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()["series"][0]
    assert snapshot["count"] == 3
    assert snapshot["sum"] == 2.55
    assert snapshot["buckets"] == [[0.1, 1], [1.0, 2], [math.inf, 3]]
