"""Tests for the four recommendation backbones."""

import numpy as np
import pytest

from repro.data import movielens_like
from repro.models import (
    GCMCRecommender,
    GCNRecommender,
    MFRecommender,
    NeuMFRecommender,
)


@pytest.fixture(scope="module")
def prepared():
    dataset = movielens_like(scale=0.35).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    return dataset, split


def _models(dataset, split):
    matrix = split.train_matrix()
    return [
        MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0),
        GCNRecommender(dataset.num_users, dataset.num_items, matrix, dim=8, num_layers=2, rng=0),
        GCNRecommender(
            dataset.num_users, dataset.num_items, matrix, dim=8, num_layers=2,
            variant="lightgcn", rng=0,
        ),
        NeuMFRecommender(dataset.num_users, dataset.num_items, dim=8, mlp_layers=(16, 8), rng=0),
        GCMCRecommender(dataset.num_users, dataset.num_items, matrix, dim=8, rng=0),
    ]


def test_full_scores_shape_and_consistency(prepared):
    dataset, split = prepared
    users = np.array([0, 1, 2, 0])
    items = np.array([0, 3, 5, 5])
    for model in _models(dataset, split):
        full = model.full_scores()
        assert full.shape == (dataset.num_users, dataset.num_items)
        reprs = model.representations()
        pair_scores = model.scores_for_pairs(reprs, users, items).data
        direct = full[users, items]
        assert np.allclose(pair_scores, direct, rtol=1e-8, atol=1e-10), type(model).__name__


def test_score_items_convenience(prepared):
    dataset, split = prepared
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=1)
    items = np.array([0, 1, 2])
    scores = model.score_items(3, items)
    assert np.allclose(scores.data, model.full_scores()[3, items])


def test_item_vectors_shapes(prepared):
    dataset, split = prepared
    for model in _models(dataset, split):
        reprs = model.representations()
        vectors = model.item_vectors(reprs, np.array([0, 1, 4]))
        assert vectors.shape[0] == 3
        assert vectors.ndim == 2


def test_quality_transform_declarations(prepared):
    dataset, split = prepared
    mf, gcn, light, neumf, gcmc = _models(dataset, split)
    assert mf.quality_transform == "exp"
    assert gcn.quality_transform == "exp"
    assert neumf.quality_transform == "sigmoid"
    assert gcmc.quality_transform == "sigmoid"


def test_gradients_reach_all_parameters(prepared):
    dataset, split = prepared
    users = np.arange(4)
    items = np.arange(4)
    for model in _models(dataset, split):
        reprs = model.representations()
        loss = (model.scores_for_pairs(reprs, users, items) ** 2).sum()
        model.zero_grad()
        loss.backward()
        touched = sum(
            1 for p in model.parameters() if p.grad is not None and np.abs(p.grad).sum() > 0
        )
        # Most parameters should receive gradient (embeddings of untouched
        # users/items legitimately get zeros inside the tables).
        assert touched >= 1, type(model).__name__


def test_state_dict_roundtrip_changes_scores(prepared):
    dataset, split = prepared
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=2)
    before = model.full_scores()
    state = model.state_dict()
    for p in model.parameters():
        p.data += 1.0
    assert not np.allclose(model.full_scores(), before)
    model.load_state_dict(state)
    assert np.allclose(model.full_scores(), before)


def test_gcn_validation(prepared):
    dataset, split = prepared
    matrix = split.train_matrix()
    with pytest.raises(ValueError):
        GCNRecommender(dataset.num_users, dataset.num_items, matrix, variant="bogus", rng=0)
    with pytest.raises(ValueError):
        GCNRecommender(dataset.num_users, dataset.num_items, matrix, num_layers=0, rng=0)
    with pytest.raises(ValueError):
        GCNRecommender(dataset.num_users + 1, dataset.num_items, matrix, rng=0)


def test_gcn_propagation_mixes_neighbors(prepared):
    # After propagation, a user's representation depends on item
    # embeddings: perturbing an interacted item's embedding must change
    # the user's GCN score for any item.
    dataset, split = prepared
    model = GCNRecommender(
        dataset.num_users, dataset.num_items, split.train_matrix(), dim=8, rng=3
    )
    user = int(split.users_with_min_train(1)[0])
    item = int(split.train[user][0])
    before = model.full_scores()[user]
    model.item_embedding.weight.data[item] += 5.0
    after = model.full_scores()[user]
    assert not np.allclose(before, after)


def test_gcmc_level_logits_shape(prepared):
    dataset, split = prepared
    model = GCMCRecommender(dataset.num_users, dataset.num_items, split.train_matrix(), dim=8, rng=4)
    reprs = model.representations()
    logits = model.level_logits(reprs, np.array([0, 1]), np.array([2, 3]))
    assert logits.shape == (2, 2)
    # scores are the log-odds of the positive level
    scores = model.scores_for_pairs(reprs, np.array([0, 1]), np.array([2, 3]))
    assert np.allclose(scores.data, logits.data[:, 1] - logits.data[:, 0])


def test_base_validation():
    with pytest.raises(ValueError):
        MFRecommender(0, 5, dim=4, rng=0)
    with pytest.raises(ValueError):
        MFRecommender(5, 5, dim=0, rng=0)
