"""Telemetry suite: metrics primitives, stage tracing, the merged snapshot.

Contracts pinned here:

1. **Primitives** — Counter/Gauge/Histogram are thread-safe (exact
   totals under concurrent increments), labeled children share one
   family, the registry is get-or-create with hard kind/label mismatch
   errors, and the histogram's percentile math agrees with the benches'
   ``latency_percentiles`` convention.
2. **Tracing** — under a :class:`~repro.utils.timing.ManualClock` the
   span tree is fully deterministic: the ``queue`` span equals the
   admission window, a degraded trace names its ladder rung, and
   breaker trips land in the event log.  ``trace_rate=0`` (the default)
   is bit-identical to the untraced stack — seeded samples included —
   because sampling is a credit accumulator, not an RNG draw.
3. **Snapshot** — ``runtime.telemetry().snapshot()`` is one versioned
   dict over every layer's stats, consistent even while worker threads
   are mid-flight; ``to_text()`` is a Prometheus-style page.

No sleeps, no flaky timing — manual clocks everywhere determinism
matters, real threads only where concurrency itself is the contract.
"""

import threading

import numpy as np
import pytest

from repro.retrieval import QuantileFunnel
from repro.serving import (
    TELEMETRY_SCHEMA_VERSION,
    BreakerSource,
    Counter,
    EventLog,
    FaultPlan,
    Gauge,
    Histogram,
    ItemCatalog,
    MetricsRegistry,
    MetricsReporter,
    Request,
    RuntimeTelemetry,
    ServingConfig,
    ServingRuntime,
    ShardedCatalog,
    StageRecorder,
    Trace,
)
from repro.serving.observability import stage_span
from repro.serving.resilience import QUALITY_TOPK
from repro.utils.timing import (
    ManualClock,
    Stopwatch,
    histogram_percentile,
    latency_percentiles,
    log_buckets,
)


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality(seed: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=m))


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
def test_counter_basics_and_monotonicity():
    counter = Counter("requests_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    counter.reset()
    assert counter.value == 0.0


def test_gauge_set_incdec_and_ratchet():
    gauge = Gauge("queue_depth")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0
    gauge.set_max(10)
    gauge.set_max(5)  # ratchet never goes down
    assert gauge.value == 10.0


def test_histogram_buckets_percentiles_and_text():
    hist = Histogram("latency_seconds", buckets=[0.01, 0.1, 1.0])
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.total == pytest.approx(5.605)
    # p50 lands in the (0.01, 0.1] bucket, overflow reports the last bound
    assert 0.01 <= hist.percentile(50.0) <= 0.1
    assert hist.percentile(99.9) == pytest.approx(1.0)
    text = hist.to_text()
    assert 'latency_seconds_bucket{le="+Inf"} 5' in text
    assert "latency_seconds_count 5" in text
    snap = hist.snapshot()
    assert snap["series"][0]["count"] == 5
    assert snap["series"][0]["buckets"][-1][1] == 5


def test_labeled_children_share_one_family():
    hist = Histogram("stage_seconds", labelnames=("stage",))
    hist.labels(stage="eigh").observe(0.25)
    hist.labels(stage="eigh").observe(0.75)
    hist.labels(stage="funnel").observe(0.1)
    assert hist.labels(stage="eigh").count == 2
    assert hist.labels(stage="funnel").count == 1
    with pytest.raises(ValueError, match="expects labels"):
        hist.labels(wrong="x")
    text = hist.to_text()
    assert 'stage_seconds_count{stage="eigh"} 2' in text
    # unlabeled observe on a family is meaningless — families hold no value
    plain = Counter("plain_total")
    with pytest.raises(ValueError, match="takes no labels"):
        plain.labels(stage="x")


def test_registry_get_or_create_and_mismatch_errors():
    registry = MetricsRegistry()
    first = registry.counter("served_total", "help")
    again = registry.counter("served_total")
    assert first is again
    with pytest.raises(ValueError, match="already registered as counter"):
        registry.gauge("served_total")
    with pytest.raises(ValueError, match="labels"):
        registry.counter("served_total", labelnames=("mode",))
    registry.histogram("lat", buckets=[1.0])
    assert registry.names() == ["lat", "served_total"]
    assert registry.get("missing") is None
    assert "# TYPE served_total counter" in registry.to_text()
    assert set(registry.snapshot()) == {"lat", "served_total"}


def test_counter_is_thread_safe_under_contention():
    counter = Counter("hits_total")
    hist = Histogram("obs_seconds", buckets=list(log_buckets()))

    def hammer():
        for _ in range(5000):
            counter.inc()
            hist.observe(0.001)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8 * 5000
    assert hist.count == 8 * 5000


def test_histogram_percentile_matches_offline_convention():
    # Dense buckets → the histogram estimate brackets the exact
    # latency_percentiles answer within one bucket's width.
    samples = [0.001 * (index + 1) for index in range(100)]
    bounds = [0.005 * (index + 1) for index in range(40)]
    hist = Histogram("check_seconds", buckets=bounds)
    for sample in samples:
        hist.observe(sample)
    exact = latency_percentiles(samples, (50.0,))["p50"]
    estimate = hist.percentile(50.0)
    assert abs(estimate - exact) <= 0.005
    # and the free function agrees with the method (same counts)
    counts = [0] * (len(bounds) + 1)
    from bisect import bisect_left

    for sample in samples:
        counts[bisect_left(bounds, sample)] += 1
    assert histogram_percentile(bounds, counts, 50.0) == pytest.approx(estimate)


def test_stopwatch_span_api_with_manual_clock():
    clock = ManualClock()
    watch = Stopwatch(clock=clock)
    with watch.span("warm"):
        clock.advance(0.5)
    with watch.span("serve"):
        clock.advance(0.25)
    assert watch.spans == [("warm", 0.0, 0.5), ("serve", 0.5, 0.75)]
    assert watch.elapsed == pytest.approx(0.75)


# ----------------------------------------------------------------------
# Trace / StageRecorder / EventLog units
# ----------------------------------------------------------------------
def test_trace_spans_events_and_coverage():
    clock = ManualClock()
    trace = Trace(clock)
    with trace.span("a"):
        clock.advance(0.6)
    with trace.span("inner", nested=True):
        clock.advance(0.1)
    trace.event("degraded", reason="queue")
    trace.annotate(served_mode="map")
    clock.advance(0.3)
    trace.finish()
    trace.finish()  # idempotent
    assert trace.duration == pytest.approx(1.0)
    # nested spans never double-count wall time
    assert trace.span_seconds() == pytest.approx(0.6)
    assert trace.span_seconds(include_nested=True) == pytest.approx(0.7)
    assert trace.coverage() == pytest.approx(0.6)
    dump = trace.to_dict()
    assert [span["name"] for span in dump["spans"]] == ["a", "inner"]
    assert dump["events"][0]["name"] == "degraded"
    assert dump["annotations"] == {"served_mode": "map"}


def test_stage_recorder_fans_out_and_null_context():
    clock = ManualClock()
    recorder = StageRecorder(clock)
    with recorder.stage("eigh"):
        clock.advance(0.2)
    with stage_span(recorder, "selection"):
        clock.advance(0.3)
    with stage_span(None, "ignored"):  # the untraced fast path
        clock.advance(1.0)
    assert recorder.seconds("eigh") == pytest.approx(0.2)
    left, right = Trace(clock), Trace(clock)
    recorder.extend_trace(left)
    recorder.extend_trace(right)
    assert [span.name for span in left.spans] == ["eigh", "selection"]
    assert [span.duration for span in right.spans] == [
        pytest.approx(0.2),
        pytest.approx(0.3),
    ]


def test_event_log_is_a_bounded_ring():
    clock = ManualClock()
    log = EventLog(capacity=4, clock=clock)
    for index in range(7):
        clock.advance(1.0)
        log.record("degraded" if index % 2 else "shed", index=index)
    assert len(log) == 4
    stats = log.stats()
    assert stats == {"capacity": 4, "recorded": 7, "retained": 4, "dropped": 3}
    retained = log.snapshot()
    assert [event["index"] for event in retained] == [3, 4, 5, 6]
    assert [event["seq"] for event in retained] == [4, 5, 6, 7]
    assert [e["index"] for e in log.snapshot(kind="shed")] == [4, 6]
    assert [e["index"] for e in log.snapshot(limit=2)] == [5, 6]
    with pytest.raises(ValueError, match="capacity"):
        EventLog(capacity=0)


# ----------------------------------------------------------------------
# Deterministic span trees through the runtime
# ----------------------------------------------------------------------
def test_traced_request_queue_span_equals_admission_window():
    clock = ManualClock()
    catalog = ItemCatalog(_factors(21, 60, 5))
    config = ServingConfig(workers=0, clock=clock, trace_rate=1.0)
    with ServingRuntime(catalog, config=config) as rt:
        future = rt.submit(
            Request(quality=_quality(21, 60), k=3, mode="sample", seed=7)
        )
        clock.advance(0.25)  # the request waits in the queue this long
        rt.flush()
        response = future.result()
    trace = response.trace
    assert trace is not None and trace.finished is not None
    by_name = {span.name: span for span in trace.spans}
    assert by_name["queue"].duration == pytest.approx(0.25)
    # engine batch phases rode along via the StageRecorder fan-out
    for stage in ("resolve", "dual_build", "eigh", "normalizer", "selection"):
        assert stage in by_name
    assert trace.annotations == {"served_mode": "sample", "degraded": False}
    # manual clock: all elapsed time is the queue wait, fully covered
    assert trace.coverage() == pytest.approx(1.0)
    # the engine histogram saw the batch phases
    stage_hist = rt.telemetry().registry.get("serving_stage_seconds")
    assert stage_hist.labels(stage="eigh").count == 1


def test_degraded_trace_names_its_ladder_rung():
    clock = ManualClock()
    catalog = ItemCatalog(_factors(22, 50, 5))
    quality = _quality(22, 50)
    config = ServingConfig(
        workers=0, clock=clock, trace_rate=1.0, queue_cap=1, max_batch=16
    )
    with ServingRuntime(catalog, config=config) as rt:
        futures = [
            rt.submit(Request(quality=quality, k=3, mode="sample", seed=5))
            for _ in range(4)  # pressure rungs 0, 1, 2, 3
        ]
        rt.flush()
        responses = [f.result() for f in futures]
    shed = responses[3]
    assert shed.served_mode == QUALITY_TOPK
    trace = shed.trace
    assert trace.annotations["served_mode"] == QUALITY_TOPK
    assert trace.annotations["degraded"] is True
    assert "quality_topk" in {span.name for span in trace.spans}
    assert ("shed", {"rung": QUALITY_TOPK}) in [
        (name, fields) for _, name, fields in trace.events
    ]
    # the middle rungs annotated their degraded mode too
    assert responses[1].trace.annotations["served_mode"] == "map"
    events = rt.telemetry().event_log
    degraded = events.snapshot(kind="degraded")
    assert {event["to_mode"] for event in degraded} >= {"map", "topk-rerank"}
    assert all(event["reason"] == "queue" for event in degraded)
    assert len(events.snapshot(kind="shed")) == 1


def test_breaker_trip_lands_in_the_event_log():
    clock = ManualClock()
    factors = _factors(23, 200, 6)
    plan = FaultPlan(clock=clock).fail_source(times=1)
    breaker = BreakerSource(QuantileFunnel(), failure_threshold=1, clock=clock)
    config = ServingConfig(
        workers=0,
        clock=clock,
        funnel_width=10,
        source=breaker,
        fault_plan=plan,
    )
    catalog = ShardedCatalog(factors, num_shards=2)
    with ServingRuntime(catalog, config=config) as rt:
        future = rt.submit(Request(quality=_quality(23, 200), k=3, mode="map"))
        rt.flush()
        future.result()  # served via the exact fallback
        assert breaker.breaker.state == "open"
        trips = rt.telemetry().event_log.snapshot(kind="breaker")
        assert trips == [
            {
                "kind": "breaker",
                "time": trips[0]["time"],
                "from_state": "closed",
                "to_state": "open",
                "seq": trips[0]["seq"],
            }
        ]
        transitions = rt.telemetry().registry.get("breaker_transitions_total")
        child = transitions.labels(from_state="closed", to_state="open")
        assert child.value == 1


def test_deadline_failures_are_logged():
    clock = ManualClock(start=5.0)
    catalog = ItemCatalog(_factors(24, 40, 5))
    config = ServingConfig(workers=0, clock=clock, trace_rate=1.0)
    with ServingRuntime(catalog, config=config) as rt:
        future = rt.submit(
            Request(quality=_quality(24, 40), k=2, mode="map", deadline=5.5)
        )
        clock.advance(1.0)  # the deadline passes while queued
        rt.flush()
        with pytest.raises(Exception, match="deadline"):
            future.result()
    expired = rt.telemetry().event_log.snapshot(kind="deadline_exceeded")
    assert len(expired) == 1
    assert expired[0]["overrun_s"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Sampling determinism and the parity contract
# ----------------------------------------------------------------------
def _sampled_requests(m: int) -> list[Request]:
    return [
        Request(quality=_quality(31, m), k=4, mode="sample", seed=101),
        Request(quality=_quality(32, m), k=4, mode="map"),
        Request(quality=_quality(33, m), k=3, mode="sample", seed=55, alpha=1.5),
        Request(quality=_quality(34, m), k=3, mode="topk-rerank", rerank_pool=20),
    ]


def _serve_at_rate(factors: np.ndarray, requests, trace_rate: float):
    catalog = ItemCatalog(factors)
    config = ServingConfig(
        workers=0, clock=ManualClock(), trace_rate=trace_rate
    )
    with ServingRuntime(catalog, config=config) as rt:
        futures = rt.submit_many(requests)
        rt.flush()
        return [future.result() for future in futures]


def test_trace_rate_zero_is_bitwise_identical_to_tracing():
    """Tracing never perturbs payloads: seeded samples byte-match."""
    m = 70
    factors = _factors(31, m, 6)
    requests = _sampled_requests(m)
    untraced = _serve_at_rate(factors, requests, trace_rate=0.0)
    traced = _serve_at_rate(factors, requests, trace_rate=1.0)
    for off, on in zip(untraced, traced):
        assert off.trace is None and on.trace is not None
        assert off.items == on.items
        assert off.log_probability == on.log_probability
        # traces are compare=False: the dataclasses still compare equal
        assert off == on


def test_fractional_trace_rate_samples_deterministically():
    m = 40
    catalog = ItemCatalog(_factors(41, m, 5))
    config = ServingConfig(workers=0, clock=ManualClock(), trace_rate=0.5)
    with ServingRuntime(catalog, config=config) as rt:
        futures = [
            rt.submit(Request(quality=_quality(41, m), k=2, mode="map"))
            for _ in range(6)
        ]
        rt.flush()
        responses = [future.result() for future in futures]
    # credit accumulator at rate 0.5: every second submission traces
    assert [r.trace is not None for r in responses] == [
        False, True, False, True, False, True,
    ]


def test_trace_rate_is_validated():
    with pytest.raises(ValueError, match="trace_rate"):
        ServingConfig(trace_rate=1.5)
    with pytest.raises(ValueError, match="event_log_capacity"):
        ServingConfig(event_log_capacity=0)


# ----------------------------------------------------------------------
# RuntimeTelemetry / MetricsReporter
# ----------------------------------------------------------------------
def test_telemetry_snapshot_schema_and_text():
    clock = ManualClock()
    catalog = ItemCatalog(_factors(51, 50, 5))
    config = ServingConfig(workers=0, clock=clock, trace_rate=1.0)
    with ServingRuntime(catalog, config=config) as rt:
        future = rt.submit(Request(quality=_quality(51, 50), k=3, mode="map"))
        clock.advance(2.0)
        rt.flush()
        future.result()
        rt.publish(_factors(52, 50, 5))
        snapshot = rt.telemetry().snapshot()
    assert snapshot["schema_version"] == TELEMETRY_SCHEMA_VERSION
    assert snapshot["uptime_s"] == pytest.approx(2.0)
    # one served request over 2 manual-clock seconds
    assert snapshot["requests_per_second"] == pytest.approx(0.5)
    assert snapshot["scheduler"]["served"] == 1
    assert snapshot["resilience"]["degraded"] == 0
    assert snapshot["catalog"]["version"] == 1  # bumped by the publish
    assert snapshot["event_log"]["recorded"] == 1  # the publish
    assert [event["kind"] for event in snapshot["events"]] == ["publish"]
    assert snapshot["metrics"]["scheduler_served_total"]["series"][0]["value"] == 1
    text = rt.telemetry().to_text()
    assert "serving_requests_per_second" in text
    assert "scheduler_queue_wait_seconds_bucket" in text
    assert "resilience_admitted_total 1" in text
    assert "publish_total 1" in text


def test_telemetry_standalone_defaults():
    clock = ManualClock()
    telemetry = RuntimeTelemetry(clock=clock)
    assert telemetry.requests_per_second() == 0.0  # no served counter wired
    clock.advance(1.0)
    telemetry.add_provider("extra", lambda: {"answer": 42})
    snapshot = telemetry.snapshot()
    assert snapshot["extra"] == {"answer": 42}
    assert snapshot["uptime_s"] == pytest.approx(1.0)


def test_metrics_reporter_manual_tick_mode():
    clock = ManualClock()
    telemetry = RuntimeTelemetry(clock=clock)
    emitted = []
    reporter = MetricsReporter(
        telemetry, interval=10.0, workers=0, clock=clock, emit=emitted.append
    )
    assert reporter.tick() is None  # interval not yet elapsed
    clock.advance(9.0)
    assert reporter.tick() is None
    clock.advance(1.0)
    snapshot = reporter.tick()
    assert snapshot is not None and emitted == [snapshot]
    assert reporter.tick() is None  # the interval restarts after an emit
    assert list(reporter.reports) == [snapshot]
    reporter.close()
    with pytest.raises(ValueError, match="interval"):
        MetricsReporter(telemetry, interval=0.0, workers=0)
    with pytest.raises(ValueError, match="workers"):
        MetricsReporter(telemetry, workers=2)


def test_metrics_reporter_threaded_emits_and_closes():
    telemetry = RuntimeTelemetry()
    seen = threading.Event()
    with MetricsReporter(
        telemetry, interval=0.01, emit=lambda _snapshot: seen.set()
    ):
        assert seen.wait(timeout=5.0)
    # closed: the worker joined, emit_now still works inline
    assert telemetry.snapshot()["schema_version"] == TELEMETRY_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Concurrency: snapshots stay consistent mid-flight
# ----------------------------------------------------------------------
def test_concurrent_submits_keep_snapshots_consistent():
    catalog = ItemCatalog(_factors(61, 60, 5))
    config = ServingConfig(workers=2, max_batch=8, trace_rate=1.0)
    total = 48
    with ServingRuntime(catalog, config=config) as rt:
        quality = _quality(61, 60)
        futures = []
        lock = threading.Lock()

        def submit_some(count):
            for _ in range(count):
                future = rt.submit(Request(quality=quality, k=2, mode="map"))
                with lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=submit_some, args=(total // 4,))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        # snapshots taken while workers race must stay internally sane
        for _ in range(10):
            snapshot = rt.telemetry().snapshot()
            sched = snapshot["scheduler"]
            assert (
                sched["served"] + sched["failed"] + sched["cancelled"]
                <= sched["submitted"]
            )
        for thread in threads:
            thread.join()
        responses = [future.result() for future in futures]
    assert len(responses) == total
    assert all(response.trace is not None for response in responses)
    final = rt.telemetry().snapshot()
    assert final["scheduler"]["served"] == total
    assert final["scheduler"]["submitted"] == total
    stage_hist = rt.telemetry().registry.get("serving_stage_seconds")
    assert stage_hist.labels(stage="selection").count >= 1


# ----------------------------------------------------------------------
# Incremental event consumption / percentile edge cases (PR 9)
# ----------------------------------------------------------------------
def test_event_log_incremental_consumption_with_since_seq():
    log = EventLog(capacity=4)
    assert log.last_seq == 0 and log.snapshot(since_seq=0) == []
    for index in range(3):
        log.record("shed", index=index)
    assert log.last_seq == 3
    first = log.snapshot(since_seq=0)
    assert [event["seq"] for event in first] == [1, 2, 3]
    cursor = first[-1]["seq"]
    # nothing new yet: the cursor-filtered tail is empty
    assert log.snapshot(since_seq=cursor) == []
    # ring overwrite: 5 more events on capacity 4 drop seq 1-4 entirely
    for index in range(5):
        log.record("degraded", index=index)
    tail = log.snapshot(since_seq=cursor)
    assert [event["seq"] for event in tail] == [5, 6, 7, 8]
    # what rolled off unseen (seq 4) is visible only as dropped count
    assert log.stats()["dropped"] == 4
    # since_seq composes with kind and limit filters
    assert [e["seq"] for e in log.snapshot(kind="degraded", since_seq=6)] == [7, 8]
    assert [e["seq"] for e in log.snapshot(since_seq=cursor, limit=2)] == [7, 8]


def test_metrics_reporter_emits_only_new_events():
    clock = ManualClock()
    telemetry = RuntimeTelemetry(clock=clock)
    reporter = MetricsReporter(telemetry, interval=1.0, workers=0, clock=clock)
    telemetry.event_log.record("publish", version=1)
    telemetry.event_log.record("shed")
    first = reporter.emit_now()
    assert [event["kind"] for event in first["new_events"]] == ["publish", "shed"]
    # no new events between emissions: the tail is empty, not repeated
    second = reporter.emit_now()
    assert second["new_events"] == []
    telemetry.event_log.record("drift", metric="ilad")
    third = reporter.emit_now()
    assert [event["kind"] for event in third["new_events"]] == ["drift"]
    reporter.close()


def test_histogram_percentile_accuracy_against_exact():
    """Dense log buckets: every estimate within one bucket's width of
    the exact order-statistic percentile, across the distribution."""
    rng = np.random.default_rng(17)
    samples = np.exp(rng.normal(loc=-4.0, scale=0.8, size=2000)).tolist()
    bounds = log_buckets(1e-4, 10.0, per_decade=16)
    hist = Histogram("latency_seconds", buckets=bounds)
    for sample in samples:
        hist.observe(sample)
    labels = ("p50", "p90", "p99")
    exact = latency_percentiles(samples, (50.0, 90.0, 99.0))
    ratio = 10.0 ** (1.0 / 16)  # adjacent log-bucket spacing
    for label, percentile in zip(labels, (50.0, 90.0, 99.0)):
        estimate = hist.percentile(percentile)
        # interpolation inside the winning bucket: the estimate sits
        # within one bucket's width of the exact order statistic
        assert abs(estimate - exact[label]) <= exact[label] * (ratio - 1.0)


def test_histogram_percentile_empty_and_single_bucket():
    # empty histogram: percentile is 0.0 by convention, where the exact
    # helper refuses (no samples to rank)
    hist = Histogram("empty_seconds", buckets=[0.1, 1.0])
    assert hist.count == 0
    assert hist.percentile(50.0) == 0.0
    assert hist.percentile(99.0) == 0.0
    with pytest.raises(ValueError, match="at least one"):
        latency_percentiles([])
    # single finite bucket: estimates interpolate inside [0, bound];
    # overflow observations clamp to the largest finite bound (there is
    # no upper edge to interpolate toward)
    single = Histogram("single_seconds", buckets=[1.0])
    single.observe(0.2)
    assert single.percentile(50.0) == pytest.approx(0.5)  # halfway through [0, 1]
    assert single.percentile(100.0) == pytest.approx(1.0)
    single.observe(25.0)  # lands in the +Inf overflow bucket
    assert single.percentile(99.0) == pytest.approx(1.0)
    assert single.count == 2
