"""Tests for the Figure 4 probability diagnostics."""

import numpy as np
import pytest

from repro.data import GroundSetSampler, movielens_like
from repro.dpp import category_jaccard_kernel
from repro.eval import (
    diverse_vs_monotonous,
    ground_set_kernel_np,
    target_count_probabilities,
)
from repro.models import MFRecommender


@pytest.fixture(scope="module")
def world():
    dataset = movielens_like(scale=0.35).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    kernel = category_jaccard_kernel(dataset.item_categories, scale=0.8, floor=0.2)
    diag = np.sqrt(np.diagonal(kernel))
    kernel = kernel / np.outer(diag, diag)
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0)
    sampler = GroundSetSampler(split, k=3, n=3, mode="S")
    instances = sampler.instances(np.random.default_rng(1))[:12]
    return dataset, split, kernel, model, instances


def test_ground_set_kernel_np_is_psd_and_sized(world):
    dataset, split, kernel, model, instances = world
    numpy_kernel = ground_set_kernel_np(model, kernel, instances[0])
    assert numpy_kernel.shape == (6, 6)
    assert np.linalg.eigvalsh(numpy_kernel).min() > 0
    assert np.allclose(numpy_kernel, numpy_kernel.T)


def test_target_groups_partition_all_subsets(world):
    dataset, split, kernel, model, instances = world
    report = target_count_probabilities(model, kernel, instances[:5])
    # Group-weighted probabilities must reconstruct total probability 1:
    # sum_z mean_p[z] * C(k, z-positions) * C(n, rest).
    from math import comb

    k, n = report.k, report.n
    total = sum(
        report.mean_probability[z] * comb(k, z) * comb(n, k - z)
        for z in range(k + 1)
    )
    assert np.isclose(total, 1.0, rtol=1e-8)
    assert np.isclose(report.uniform, 1.0 / comb(k + n, k))


def test_untrained_model_probabilities_near_uniform(world):
    dataset, split, kernel, model, instances = world
    fresh = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=42)
    # With std 0.01 embeddings, scores ~ 0 and quality ~ 1 for all items.
    fresh.user_embedding.weight.data *= 0.01
    fresh.item_embedding.weight.data *= 0.01
    report = target_count_probabilities(fresh, kernel, instances[:5])
    assert np.all(np.abs(report.mean_probability - report.uniform) < 0.35 * report.uniform)


def test_trained_model_separates_target_groups(world):
    dataset, split, kernel, model, instances = world
    from repro.autodiff import optim
    from repro.losses import make_lkp_variant

    trained = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=3)
    criterion = make_lkp_variant("PS", diversity_kernel=kernel, k=3, n=3)
    optimizer = optim.Adam(trained.parameters(), lr=0.1)
    for _ in range(15):
        loss = criterion.batch_loss(trained, trained.representations(), instances)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    report = target_count_probabilities(trained, kernel, instances)
    # Monotone trend: more targets -> higher average probability, and the
    # full-target group far above uniform.
    assert report.mean_probability[-1] > 3 * report.uniform
    assert report.mean_probability[-1] > report.mean_probability[0]


def test_report_rendering(world):
    dataset, split, kernel, model, instances = world
    report = target_count_probabilities(model, kernel, instances[:3])
    rows = report.as_rows()
    assert any("target subset" in row for row in rows)


def test_instances_must_share_shape(world):
    dataset, split, kernel, model, instances = world
    other = GroundSetSampler(split, k=2, n=2).instances(np.random.default_rng(2))[:1]
    with pytest.raises(ValueError, match="same"):
        target_count_probabilities(model, kernel, instances[:1] + other)
    with pytest.raises(ValueError):
        target_count_probabilities(model, kernel, [])


def test_diverse_vs_monotonous_report(world):
    dataset, split, kernel, model, instances = world
    report = diverse_vs_monotonous(
        model, kernel, instances, split, diverse_threshold=3, monotonous_threshold=3
    )
    assert report.diverse_count + report.monotonous_count <= len(instances)
    if report.diverse_count:
        assert np.isfinite(report.diverse_mean)
