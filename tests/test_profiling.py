"""Performance-introspection suite: profiler, footprint, headroom.

Contracts pinned here:

1. **Parity** — ``profile_hz=0`` (the default) builds no registry, no
   sampler and no per-batch recorder: responses are bit-identical to a
   profiled run's, seeded samples included (the sampler is passive and
   consumes no RNG).
2. **Attribution** — samples land under the innermost active stage
   (``selection`` inside ``engine`` attributes to ``selection``), the
   coarse ``engine`` marker counts as unattributed, and coverage is
   their ratio.
3. **Footprint** — per-structure byte accounting only ever reads built
   lazies (walking the report never triggers a Gram build), retains one
   entry per live catalog generation, and folds in the funnel cache's
   per-version pool bytes.
4. **Headroom** — the affine batch-cost fit recovers synthetic
   ``T(B) = fixed + per_request·B`` exactly, degenerate histories fall
   back to the observed mean rate, and a cold model reports zero
   saturation, never a guess.

Plus the PR's logging/reporting satellites: the :func:`attach_logging`
bridge (incremental, level-mapped, ``serving_``-prefixed extras) and
the :class:`MetricsReporter` poison-sink regression (a raising emit
callback is counted, not fatal).

Deterministic throughout: manual clocks, ``workers=0`` inline dispatch,
``sample_once`` driven by hand with fake frame providers.
"""

import logging
import sys
import threading

import numpy as np
import pytest

from repro.retrieval import FunnelCache
from repro.serving import (
    CapacityModel,
    ItemCatalog,
    MetricsReporter,
    Request,
    SamplingProfiler,
    ServingConfig,
    ServingRuntime,
    StackProfile,
    StageRegistry,
    attach_logging,
)
from repro.serving.profiling import collect_footprint, nbytes_of
from repro.utils.profiling import (
    OVERFLOW_STACK,
    current_rss_bytes,
    frame_stack,
    peak_rss_bytes,
)
from repro.utils.timing import ManualClock


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality(seed: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.3, size=m))


def _serve(rt: ServingRuntime, requests) -> list:
    futures = rt.submit_many(requests)
    rt.flush()
    return [future.result() for future in futures]


# ----------------------------------------------------------------------
# StageRegistry
# ----------------------------------------------------------------------
def test_stage_registry_nesting_and_scopes():
    registry = StageRegistry()
    assert registry.current() is None
    assert registry.active() == {}
    with registry.scope("engine"):
        assert registry.current() == "engine"
        with registry.scope("selection"):
            # innermost wins; the full stack is visible to the sampler
            assert registry.current() == "selection"
            ident = threading.get_ident()
            assert registry.active() == {ident: ("engine", "selection")}
        assert registry.current() == "engine"
    # fully popped → the thread's entry is reclaimed, not left empty
    assert registry.active() == {}
    # pop on an empty stack is a no-op, not an error
    registry.pop()


def test_stage_registry_is_per_thread():
    registry = StageRegistry()
    registry.push("engine")
    seen = {}

    def other():
        seen["current"] = registry.current()
        registry.push("funnel")
        seen["active"] = registry.active()
        registry.pop()

    thread = threading.Thread(target=other)
    thread.start()
    thread.join()
    registry.pop()
    assert seen["current"] is None  # other thread saw no inherited stage
    assert len(seen["active"]) == 2  # both threads visible to the sampler


# ----------------------------------------------------------------------
# StackProfile / frame_stack
# ----------------------------------------------------------------------
def test_frame_stack_is_root_first_and_keeps_the_leaf():
    frames = frame_stack(sys._getframe())
    assert frames[-1].endswith(".test_frame_stack_is_root_first_and_keeps_the_leaf")
    # truncation drops ancestry, never the leaf
    shallow = frame_stack(sys._getframe(), max_depth=1)
    assert shallow == frames[-1:]


def test_stack_profile_folds_counts_and_collapses():
    profile = StackProfile()
    profile.record(("a.f", "b.g"), stage="selection")
    profile.record(("a.f", "b.g"), stage="selection")
    profile.record(("a.f", "c.h"), stage="eigh")
    assert profile.samples == 3
    assert profile.stage_samples() == {"selection": 2, "eigh": 1}
    # self time accrues to the leaf frame
    assert profile.self_samples() == {"b.g": 2, "c.h": 1}
    assert profile.self_samples(stage="eigh") == {"c.h": 1}
    lines = profile.collapsed().splitlines()
    assert "selection;a.f;b.g 2" in lines
    assert "eigh;a.f;c.h 1" in lines


def test_stack_profile_bounds_unique_stacks():
    profile = StackProfile(max_stacks=2)
    profile.record(("a.f",), stage="s1")
    profile.record(("b.g",), stage="s1")
    profile.record(("c.h",), stage="s1")  # third unique stack → overflow
    profile.record(("c.h",), stage="s1")
    stats = profile.stats()
    assert stats["samples"] == 4
    assert stats["overflowed"] == 2
    assert stats["unique_stacks"] <= 3  # 2 real + the overflow bucket
    assert ";".join(OVERFLOW_STACK) + " 2" in profile.collapsed()


# ----------------------------------------------------------------------
# SamplingProfiler: deterministic single ticks
# ----------------------------------------------------------------------
def test_sample_once_attributes_to_innermost_stage():
    registry = StageRegistry()
    ident = threading.get_ident() + 1  # anything but the sampler itself
    registry._stacks[ident] = ["engine", "selection"]
    frame = sys._getframe()
    profiler = SamplingProfiler(
        hz=100.0, registry=registry, frames_provider=lambda: {ident: frame}
    )
    assert profiler.sample_once() == 1
    assert profiler.attribution_coverage() == 1.0  # finer than "engine"
    stages = profiler.profile.stage_samples()
    assert set(stages) == {"selection"}
    # stage self seconds scale by the sampling period
    assert profiler.stage_self_seconds() == {"selection": pytest.approx(0.01)}


def test_sample_once_counts_bare_engine_as_unattributed():
    registry = StageRegistry()
    ident = threading.get_ident() + 1
    registry._stacks[ident] = ["engine"]
    frame = sys._getframe()
    profiler = SamplingProfiler(
        hz=50.0, registry=registry, frames_provider=lambda: {ident: frame}
    )
    profiler.sample_once()
    assert profiler.attribution_coverage() == 0.0
    stats = profiler.stats()
    assert stats["stage_samples"] == 1 and stats["attributed_samples"] == 0


def test_sample_once_skips_idle_threads_and_itself():
    registry = StageRegistry()
    profiler = SamplingProfiler(
        hz=10.0,
        registry=registry,
        frames_provider=lambda: (_ for _ in ()).throw(AssertionError),
    )
    # idle tick: no stage anywhere → frames provider never consulted
    assert profiler.sample_once() == 0
    assert profiler.stats()["ticks"] == 1
    # own thread in-stage is skipped (the sampler never profiles itself)
    registry.push("engine")
    try:
        profiler2 = SamplingProfiler(
            hz=10.0, registry=registry, frames_provider=lambda: {}
        )
        assert profiler2.sample_once() == 0
    finally:
        registry.pop()


def test_profiler_thread_lifecycle():
    registry = StageRegistry()
    with SamplingProfiler(hz=200.0, registry=registry) as profiler:
        assert profiler._thread is not None
    assert profiler._thread is None  # stop() joined it
    profiler.stop()  # idempotent


# ----------------------------------------------------------------------
# Parity: profile_hz=0 is bit-identical to a profiled run
# ----------------------------------------------------------------------
def test_profile_hz_zero_is_bit_identical_to_profiled_run():
    m, r, k = 300, 8, 4
    factors = _factors(0, m, r)
    requests = [
        Request(quality=_quality(seed, m), k=k, mode=mode, seed=seed)
        for seed, mode in zip(range(8), ["sample", "map"] * 4)
    ]

    def run(profile_hz: float):
        config = ServingConfig(
            workers=0, clock=ManualClock(), profile_hz=profile_hz
        )
        with ServingRuntime(ItemCatalog(factors), config=config) as rt:
            return _serve(rt, list(requests))

    plain = run(0.0)
    profiled = run(250.0)
    for a, b in zip(plain, profiled):
        assert a.items == b.items
        assert a.log_probability == b.log_probability
        assert a.mode == b.mode and a.served_mode == b.served_mode


def test_profile_hz_validation_and_runtime_wiring():
    with pytest.raises(ValueError):
        ServingConfig(profile_hz=-1.0)
    factors = _factors(1, 200, 8)
    with ServingRuntime(
        ItemCatalog(factors),
        config=ServingConfig(workers=0, clock=ManualClock()),
    ) as rt:
        assert rt.profiler is None
        snapshot = rt.telemetry().snapshot()
        assert "profile" not in snapshot
        assert "footprint" in snapshot and "headroom" in snapshot
    with ServingRuntime(
        ItemCatalog(factors),
        config=ServingConfig(workers=0, clock=ManualClock(), profile_hz=100.0),
    ) as rt:
        assert rt.profiler is not None
        _serve(rt, [Request(quality=_quality(2, 200), k=3, seed=0)])
        snapshot = rt.telemetry().snapshot()
        assert snapshot["profile"]["hz"] == 100.0
    # close() stopped the sampler thread
    assert rt.profiler._thread is None


def test_profiled_runtime_attributes_engine_stages():
    """Drive the sampler by hand mid-batch: workers=0 keeps the engine
    on this thread, so a tick from another thread must see the stage
    this thread is inside."""
    m = 300
    factors = _factors(3, m, 8)
    config = ServingConfig(workers=0, clock=ManualClock(), profile_hz=50.0)
    with ServingRuntime(ItemCatalog(factors), config=config) as rt:
        ticks: list[int] = []
        profiler = rt.profiler
        profiler.stop()  # deterministic: only the hand-driven loop samples
        stop = threading.Event()

        def sampler_loop():
            while not stop.is_set():
                ticks.append(profiler.sample_once())

        thread = threading.Thread(target=sampler_loop)
        thread.start()
        try:
            for seed in range(40):
                _serve(rt, [Request(quality=_quality(seed, m), k=4, seed=seed)])
        finally:
            stop.set()
            thread.join()
        stages = set(profiler.profile.stage_samples())
    # every sample landed under a named stage (the engine marker at
    # worst); with real engine stages nested inside, fine stages appear
    assert sum(ticks) == profiler.stats()["stage_samples"]
    assert stages <= {
        "engine", "resolve", "dual_build", "eigh", "normalizer",
        "selection", "emit", "quality_topk",
    }


# ----------------------------------------------------------------------
# Footprint accounting
# ----------------------------------------------------------------------
def test_nbytes_of_counts_arrays_once_and_caps_depth():
    base = np.zeros((10, 10))
    view = base[:5]
    assert nbytes_of(base) == base.nbytes
    # a view and its base share one buffer → counted once
    assert nbytes_of([base, view]) == base.nbytes
    # container keys are getsizeof-counted, the shared buffer only once
    nested = nbytes_of({"a": base, "b": {"c": view}})
    assert base.nbytes <= nested < base.nbytes + 500
    cyclic: dict = {}
    cyclic["self"] = cyclic
    nbytes_of(cyclic)  # terminates


def test_footprint_reports_built_structures_per_generation():
    m, r = 400, 8
    factors = _factors(4, m, r)
    catalog = ItemCatalog(factors)
    report = collect_footprint(catalog)
    (structures,) = report.versions.values()
    assert structures["factors"] == factors.nbytes
    # nothing served yet: the walk must not have built the lazies
    assert "dual_spectrum" not in structures
    assert "gram" not in structures

    config = ServingConfig(workers=0, clock=ManualClock())
    with ServingRuntime(catalog, config=config) as rt:
        _serve(rt, [Request(quality=_quality(5, m), k=4, seed=0)])
        built = rt.footprint().versions[rt.catalog.snapshot().version]
        # serving built at least one derived structure (the batched
        # path materializes the outer-product table; sequential paths
        # the dual spectrum)
        assert built.get("gram_products", 0) + built.get("dual_spectrum", 0) > 0

        # publish retains the displaced generation as its own entry
        rt.publish(_factors(6, m, r))
        after = rt.footprint()
        assert len(after.versions) == 2
        assert after.total_tracked_bytes >= 2 * factors.nbytes
        blob = after.to_dict()
        assert set(blob["versions"]) == {
            str(version) for version in after.versions
        }
    if current_rss_bytes() is not None:
        assert report.rss_bytes > 0
    if peak_rss_bytes() is not None:
        assert report.peak_rss_bytes >= report.rss_bytes or True


def test_footprint_folds_in_funnel_cache_pools():
    cache = FunnelCache(capacity=8)
    pool = np.arange(50, dtype=np.int64)
    quality = np.ones(100)
    cache.put(user=1, version=3, width=50, pool=pool, quality=quality)
    cache.put(user=2, version=4, width=50, pool=pool, quality=quality)
    footprint = cache.footprint()
    assert footprint["entries"] == 2
    assert footprint["bytes"] == 2 * pool.nbytes
    assert footprint["by_version"] == {
        "3": pool.nbytes, "4": pool.nbytes
    }

    class _Server:
        funnel_cache = cache

    report = collect_footprint(ItemCatalog(_factors(7, 100, 4)), _Server())
    assert report.caches["funnel_cache"]["bytes"] == 2 * pool.nbytes
    assert report.total_tracked_bytes >= 2 * pool.nbytes


# ----------------------------------------------------------------------
# CapacityModel
# ----------------------------------------------------------------------
def test_capacity_model_recovers_affine_batch_cost():
    model = CapacityModel(workers=2, max_batch=32)
    fixed, per_request = 0.01, 0.002
    for size in range(1, 33):
        model.observe(size, fixed + per_request * size, modes={"sample": size})
    got_fixed, got_rate = model.fit()
    assert got_fixed == pytest.approx(fixed)
    assert got_rate == pytest.approx(per_request)
    # saturation at B: workers * B / T(B)
    expected = 2 * 32 / (fixed + per_request * 32)
    assert model.saturation_req_per_s(32) == pytest.approx(expected)


def test_capacity_model_degenerate_histories_fall_back_to_mean_rate():
    cold = CapacityModel()
    assert cold.fit() == (0.0, 0.0)
    assert cold.saturation_req_per_s() == 0.0  # never a guess

    single = CapacityModel(workers=1)
    for _ in range(5):
        single.observe(8, 0.04)  # one batch size only → no slope
    fixed, rate = single.fit()
    assert fixed == 0.0
    assert rate == pytest.approx(0.005)
    assert single.saturation_req_per_s() == pytest.approx(8 / 0.04)


def test_capacity_model_headroom_report_shape():
    model = CapacityModel(workers=1, max_batch=16)
    for size in (8, 16, 16):
        model.observe(size, 0.001 * size, modes={"sample": size - 1, "map": 1})
    report = model.headroom(
        uptime_s=10.0, observed_req_per_s=100.0, mode_costs={"sample": 0.002}
    )
    assert report.busy_seconds == pytest.approx(0.04)
    assert report.utilization == pytest.approx(0.004)
    assert report.saturation_req_per_s == pytest.approx(1000.0)
    assert report.headroom_fraction == pytest.approx(0.9)
    assert report.batch_size_counts == {8: 1, 16: 2}
    assert report.per_mode["sample"]["saturation_req_per_s"] == pytest.approx(500.0)
    assert report.per_mode["map"]["requests"] == 3
    assert report.per_mode["sample"]["share"] == pytest.approx(37 / 40)
    blob = report.to_dict()
    assert blob["batch_cost_fit"]["per_request_s"] == pytest.approx(0.001)
    assert blob["batch_size_counts"] == {"8": 1, "16": 2}


def test_runtime_headroom_smoke_under_manual_clock():
    """workers=0 + manual clock → zero elapsed per batch: the model
    must report zero saturation (cold), never a fabricated number."""
    m = 200
    config = ServingConfig(workers=0, clock=ManualClock())
    with ServingRuntime(ItemCatalog(_factors(8, m, 8)), config=config) as rt:
        _serve(rt, [Request(quality=_quality(9, m), k=3, seed=0)])
        report = rt.headroom()
        assert report.workers == 1
        assert report.saturation_req_per_s == 0.0
        assert report.headroom_fraction == 0.0
        assert report.batch_size_counts == {1: 1}
        assert rt.telemetry().snapshot()["headroom"]["workers"] == 1


# ----------------------------------------------------------------------
# attach_logging bridge
# ----------------------------------------------------------------------
def test_attach_logging_replays_events_incrementally(caplog):
    m = 200
    config = ServingConfig(workers=0, clock=ManualClock())
    with ServingRuntime(ItemCatalog(_factors(10, m, 8)), config=config) as rt:
        bridge = attach_logging(rt, logger="test.serving.bridge")
        with caplog.at_level(logging.INFO, logger="test.serving.bridge"):
            rt.publish(_factors(11, m, 8))
            emitted = bridge.pump()
            assert emitted >= 1
            assert bridge.pump() == 0  # cursor: nothing new → no records
    publishes = [
        record for record in caplog.records
        if record.serving_event == "publish"
    ]
    assert publishes, [r.message for r in caplog.records]
    record = publishes[0]
    assert record.levelno == logging.INFO
    assert record.name == "test.serving.bridge"
    assert "publish" in record.getMessage()
    assert record.serving_seq >= 1
    assert hasattr(record, "serving_version")


def test_attach_logging_level_map_overrides(caplog):
    m = 200
    config = ServingConfig(workers=0, clock=ManualClock())
    with ServingRuntime(ItemCatalog(_factors(12, m, 8)), config=config) as rt:
        bridge = attach_logging(
            rt,
            logger="test.serving.levels",
            level_map={"publish": logging.ERROR},
        )
        with caplog.at_level(logging.ERROR, logger="test.serving.levels"):
            rt.publish(_factors(13, m, 8))
            bridge.pump()
    assert any(
        record.levelno == logging.ERROR
        and record.serving_event == "publish"
        for record in caplog.records
    )


# ----------------------------------------------------------------------
# MetricsReporter poison-sink regression
# ----------------------------------------------------------------------
def test_reporter_survives_poison_sink_and_counts_it():
    m = 200
    clock = ManualClock()
    config = ServingConfig(workers=0, clock=clock)
    with ServingRuntime(ItemCatalog(_factors(14, m, 8)), config=config) as rt:
        telemetry = rt.telemetry()
        calls = {"n": 0}

        def sink(_snapshot):
            calls["n"] += 1
            raise RuntimeError("exporter down")

        reporter = MetricsReporter(
            telemetry, interval=1.0, workers=0, clock=clock, emit=sink
        )
        first = reporter.emit_now()  # must not raise
        clock.advance(1.5)
        assert reporter.tick() is not None
        assert calls["n"] == 2
        # both reports were retained despite the sink failing
        assert len(reporter.reports) == 2
        assert first["schema_version"] == first["meta"]["schema_version"]
        errors = telemetry.registry.get("reporter_errors_total")
        assert errors.value == 2
        reporter.close()
