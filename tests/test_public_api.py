"""Public-surface snapshot: accidental API changes must fail CI.

``repro.serving`` and ``repro.retrieval`` are the packages external
callers import from; their ``__all__`` is the supported surface.  This
test pins the exact contents — adding a name is a deliberate one-line
diff here, removing or renaming one is a breaking change that should
never happen by accident.
"""

import dataclasses

import repro.retrieval
import repro.serving

SERVING_API = {
    "CatalogSnapshot",
    "ItemCatalog",
    "KDPPServer",
    "Request",
    "Response",
    "REQUEST_MODES",
    "ServingConfig",
    "Session",
    "MicroBatcher",
    "ServingRuntime",
    "ShardedCatalog",
    "ShardedKDPPServer",
    "ShardedSnapshot",
    "RecommenderBridge",
    "quality_from_scores",
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "SourceUnavailable",
    "ShutdownError",
    "TransientError",
    "BreakerSource",
    "CircuitBreaker",
    "FaultPlan",
    "DEGRADATION_LADDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsReporter",
    "RuntimeTelemetry",
    "Span",
    "StageRecorder",
    "Trace",
    "EventLog",
    "TELEMETRY_SCHEMA_VERSION",
    "ResponseAuditor",
    "CanaryReport",
    "SLO",
    "SLOTracker",
    "HealthStatus",
    "AlertSink",
    "DriftDetector",
    "WindowedStat",
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "LoggingBridge",
    "attach_logging",
    "StageRegistry",
    "StackProfile",
    "SamplingProfiler",
    "FootprintReport",
    "CapacityModel",
    "HeadroomReport",
}

RETRIEVAL_API = {
    "CandidateSource",
    "ExactTopK",
    "QuantileFunnel",
    "IVFIndex",
    "FunnelCache",
    "exclusion_token",
    "session_token",
    "shard_offsets",
    "shard_snapshots",
}


def test_serving_public_surface_is_pinned():
    assert set(repro.serving.__all__) == SERVING_API
    for name in SERVING_API:
        assert getattr(repro.serving, name) is not None


def test_retrieval_public_surface_is_pinned():
    assert set(repro.retrieval.__all__) == RETRIEVAL_API
    for name in RETRIEVAL_API:
        assert getattr(repro.retrieval, name) is not None


def test_request_and_response_shapes():
    """The request/response dataclass fields are API too."""
    request_fields = {f.name for f in dataclasses.fields(repro.serving.Request)}
    assert {
        "quality",
        "k",
        "mode",
        "exclude",
        "candidates",
        "seed",
        "user",
        "rerank_pool",
        "alpha",
        "history",
        "pins",
        "quotas",
        "categories",
        "deadline",
    } <= request_fields
    response = dataclasses.fields(repro.serving.Response)
    assert {f.name for f in response} >= {
        "items",
        "log_probability",
        "mode",
        "k",
        "version",
        "cached",
        "degraded",
        "served_mode",
        "trace",
    }
    # Frozen responses: the dataclass params say so.
    assert repro.serving.Response.__dataclass_params__.frozen
    config_fields = {f.name for f in dataclasses.fields(repro.serving.ServingConfig)}
    assert config_fields == {
        "rerank_pool",
        "funnel_width",
        "max_batch",
        "max_wait",
        "workers",
        "clock",
        "source",
        "funnel_cache",
        "queue_cap",
        "overload_policy",
        "publish_retries",
        "publish_backoff",
        "fault_plan",
        "trace_rate",
        "event_log_capacity",
        "audit_rate",
        "audit_window",
        "canary_min_audits",
        "canary_tolerance",
        "drift_window",
        "drift_threshold",
        "profile_hz",
        "slos",
        "alert_sink",
    }
