"""Chaos suite: overload-safe serving under deterministic fault injection.

Contracts pinned here:

1. **No-pressure parity** — with no faults, no deadlines and queue depth
   below the cap, the resilience layer is invisible: runtime-served
   responses are bit-identical to direct engine serving (seeded samples
   included), monolithic and sharded.
2. **Admission control** — the queue cap rejects with a structured
   ``OverloadError`` or degrades down the ladder, every degraded
   response stamped (``degraded`` / ``served_mode``).
3. **Deadline budgets** — expired requests fail with
   ``DeadlineExceeded``; requests whose remaining budget is below their
   mode's learned cost degrade instead of serving late.
4. **Circuit breaker** — injected source failures trip to the exact
   fallback (recall unaffected: pools equal the oracle's), recovery is
   half-open, deadline blowouts count as failures.
5. **Lifecycle** — ``close(drain=)`` never strands a future, even
   racing concurrent submits; ``try_cancel`` removes queued entries;
   solo retries are counted and capped by deadlines; transient publish
   failures retry with backoff.

Everything runs against :class:`~repro.utils.timing.ManualClock` and
seeded faults — no sleeps, no flaky timing.
"""

import threading

import numpy as np
import pytest

from repro.retrieval import ExactTopK, QuantileFunnel
from repro.serving import (
    DEGRADATION_LADDER,
    BreakerSource,
    DeadlineExceeded,
    FaultPlan,
    ItemCatalog,
    KDPPServer,
    MicroBatcher,
    OverloadError,
    Request,
    ServingConfig,
    ServingError,
    ServingRuntime,
    ShardedCatalog,
    ShardedKDPPServer,
    ShutdownError,
    SourceUnavailable,
    TransientError,
)
from repro.serving.resilience import QUALITY_TOPK, ModeCostModel, degrade_mode
from repro.utils.timing import ManualClock
from repro.utils.topk import top_k_indices


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality(seed: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=m))


def _same_response(left, right) -> None:
    assert left.items == right.items
    assert left.log_probability == right.log_probability
    assert left.mode == right.mode and left.k == right.k
    assert left.version == right.version
    assert left.degraded == right.degraded
    assert left.served_mode == right.served_mode


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def test_error_taxonomy_roots_in_runtime_error():
    for cls in (OverloadError, DeadlineExceeded, SourceUnavailable, ShutdownError,
                TransientError):
        error = cls("boom", index=3)
        assert isinstance(error, ServingError)
        assert isinstance(error, RuntimeError)
        assert error.index == 3 and error.request is None


def test_degrade_mode_walks_the_ladder():
    quality = np.ones(8)
    sample = Request(quality=quality, k=2, mode="sample")
    assert degrade_mode(sample, 0) == "sample"
    assert degrade_mode(sample, 1) == "map"
    assert degrade_mode(sample, 2) == "topk-rerank"
    assert degrade_mode(sample, 3) == QUALITY_TOPK
    assert degrade_mode(sample, 99) == QUALITY_TOPK
    # Explicitly-sliced requests skip the rerank rung (the engine
    # rejects explicit-slice rerank) and land on quality top-k.
    sliced = Request(quality=quality, k=2, mode="map", candidates=np.arange(4))
    assert degrade_mode(sliced, 1) == QUALITY_TOPK
    assert DEGRADATION_LADDER == ("sample", "map", "topk-rerank", QUALITY_TOPK)


def test_cost_model_ewma_and_cold_estimates():
    model = ModeCostModel(decay=0.5)
    assert model.estimate("sample") == 0.0  # cold model never degrades
    model.observe("sample", 1.0)
    model.observe("sample", 0.0)
    assert model.estimate("sample") == pytest.approx(0.5)
    assert model.snapshot() == {"sample": pytest.approx(0.5)}


# ----------------------------------------------------------------------
# No-pressure parity (the bit-identical contract)
# ----------------------------------------------------------------------
def _parity_requests(m: int) -> list[Request]:
    return [
        Request(quality=_quality(11, m), k=4, mode="sample", seed=101),
        Request(quality=_quality(12, m), k=4, mode="map"),
        Request(quality=_quality(13, m), k=3, mode="topk-rerank", rerank_pool=25),
        Request(
            quality=_quality(14, m),
            k=3,
            mode="sample",
            seed=202,
            alpha=2.0,
            history=np.array([1, 5]),
            # A far deadline must not perturb anything: the cost model
            # is cold, so the budget check cannot fire.
            deadline=1e9,
        ),
        Request(
            quality=_quality(15, m),
            k=3,
            mode="map",
            pins=np.array([7]),
            exclude=np.array([2]),
        ),
    ]


def test_runtime_parity_monolithic():
    factors = _factors(1, 80, 6)
    catalog = ItemCatalog(factors)
    requests = _parity_requests(80)
    direct = KDPPServer(ItemCatalog(factors)).serve(requests)
    clock = ManualClock()
    with ServingRuntime(catalog, config=ServingConfig(workers=0, clock=clock)) as rt:
        futures = rt.submit_many(requests)
        rt.flush()
        served = [f.result() for f in futures]
    for mine, reference in zip(served, direct):
        _same_response(mine, reference)
        assert not mine.degraded and mine.served_mode is None
    stats = rt.stats
    assert stats["resilience"]["degraded"] == 0
    assert stats["resilience"]["deadline_exceeded"] == 0


def test_runtime_parity_sharded():
    factors = _factors(2, 300, 6)
    config = ServingConfig(workers=0, clock=ManualClock(), funnel_width=24)
    requests = _parity_requests(300)
    direct = ShardedKDPPServer(
        ShardedCatalog(factors, num_shards=4), config=config
    ).serve(requests)
    catalog = ShardedCatalog(factors, num_shards=4)
    with ServingRuntime(catalog, config=config) as rt:
        futures = rt.submit_many(requests)
        rt.flush()
        served = [f.result() for f in futures]
    for mine, reference in zip(served, direct):
        _same_response(mine, reference)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_queue_cap_reject_policy():
    catalog = ItemCatalog(_factors(3, 40, 5))
    config = ServingConfig(
        workers=0, clock=ManualClock(), queue_cap=2, overload_policy="reject"
    )
    with ServingRuntime(catalog, config=config) as rt:
        quality = _quality(3, 40)
        rt.submit(Request(quality=quality, k=2, mode="map"))
        rt.submit(Request(quality=quality, k=2, mode="map"))
        with pytest.raises(OverloadError, match="cap"):
            rt.submit(Request(quality=quality, k=2, mode="map"))
        rt.flush()
    assert rt.stats["rejected"] == 1
    assert rt.stats["served"] == 2


def test_queue_cap_degrade_policy_walks_ladder_and_stamps():
    m = 60
    factors = _factors(4, m, 5)
    catalog = ItemCatalog(factors)
    quality = _quality(4, m)
    config = ServingConfig(
        workers=0, clock=ManualClock(), queue_cap=1, max_batch=16
    )
    with ServingRuntime(catalog, config=config) as rt:
        # Depths at submit: 0, 1, 2, 3 → pressure rungs 0, 1, 2, 3.
        futures = [
            rt.submit(Request(quality=quality, k=3, mode="sample", seed=9))
            for _ in range(4)
        ]
        rt.flush()
        responses = [f.result() for f in futures]
    assert [r.degraded for r in responses] == [False, True, True, True]
    assert responses[0].served_mode is None
    assert [r.served_mode for r in responses[1:]] == [
        "map", "topk-rerank", QUALITY_TOPK,
    ]
    # The caller's mode is always echoed; the stamps carry the truth.
    assert all(r.mode == "sample" for r in responses)
    # The terminal rung is plain quality top-k: no kernel, no probability.
    shed = responses[3]
    assert shed.log_probability is None
    assert shed.items == top_k_indices(quality, 3).tolist()
    stats = rt.stats
    assert stats["degraded_admissions"] == 3
    assert stats["resilience"]["queue_degraded"] == 3
    assert stats["resilience"]["quality_topk_served"] == 1


def test_quality_topk_respects_exclusions_and_slices():
    m = 30
    catalog = ItemCatalog(_factors(5, m, 4))
    quality = np.linspace(1.0, 2.0, m)  # item m-1 is the best
    config = ServingConfig(workers=0, clock=ManualClock(), queue_cap=1)
    with ServingRuntime(catalog, config=config) as rt:
        filler = rt.submit(Request(quality=quality, k=2, mode="map"))
        for _ in range(3):  # push pressure to the terminal rung
            filler2 = rt.submit(Request(quality=quality, k=2, mode="map"))
        excluded = rt.submit(
            Request(quality=quality, k=2, mode="map", exclude=np.array([m - 1]))
        )
        sliced = rt.submit(
            Request(quality=quality, k=2, mode="map", candidates=np.array([3, 9, 4]))
        )
        rt.flush()
        for future in (filler, filler2):
            future.result()
        top = excluded.result()
        assert top.served_mode == QUALITY_TOPK
        assert top.items == [m - 2, m - 3]  # best two after the exclusion
        narrow = sliced.result()
        assert narrow.served_mode == QUALITY_TOPK
        assert narrow.items == [9, 4]  # best of the explicit slice


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------
def test_expired_deadline_fails_structurally():
    catalog = ItemCatalog(_factors(6, 40, 5))
    clock = ManualClock(start=5.0)
    config = ServingConfig(workers=0, clock=clock)
    with ServingRuntime(catalog, config=config) as rt:
        future = rt.submit(
            Request(quality=_quality(6, 40), k=2, mode="map", deadline=4.0)
        )
        rt.flush()
        with pytest.raises(DeadlineExceeded):
            future.result()
    assert rt.stats["resilience"]["deadline_exceeded"] == 1
    assert rt.stats["failed"] == 1


def test_deadline_budget_degrades_against_learned_costs():
    catalog = ItemCatalog(_factors(7, 50, 5))
    clock = ManualClock()
    plan = FaultPlan(clock=clock)
    plan.slow_serve(0.5, times=1)  # teach the cost model: sample ≈ 0.5s
    config = ServingConfig(workers=0, clock=clock, fault_plan=plan)
    quality = _quality(7, 50)
    with ServingRuntime(catalog, config=config) as rt:
        teach = rt.submit(Request(quality=quality, k=3, mode="sample", seed=1))
        rt.flush()
        teach.result()
        assert rt.stats["resilience"]["mode_costs"]["sample"] == pytest.approx(0.5)
        now = clock()
        tight = rt.submit(
            Request(quality=quality, k=3, mode="sample", seed=2, deadline=now + 0.1)
        )
        roomy = rt.submit(
            Request(quality=quality, k=3, mode="sample", seed=3, deadline=now + 9.0)
        )
        rt.flush()
        degraded = tight.result()
        assert degraded.degraded and degraded.served_mode == "map"
        assert degraded.mode == "sample"
        clean = roomy.result()
        assert not clean.degraded and clean.served_mode is None
    assert rt.stats["resilience"]["deadline_degraded"] == 1


def test_deadline_is_validated_and_propagated_through_the_funnel():
    with pytest.raises(ValueError, match="deadline"):
        Request(quality=np.ones(8), k=2, deadline=float("nan")).validate(8)
    catalog = ShardedCatalog(_factors(8, 120, 5), num_shards=3)
    server = ShardedKDPPServer(catalog, config=ServingConfig(funnel_width=8))
    lowered = server._lower(
        [Request(quality=_quality(8, 120), k=2, mode="map", deadline=42.0)],
        catalog.snapshot(),
    )[0]
    assert lowered.candidates is not None and lowered.deadline == 42.0


# ----------------------------------------------------------------------
# Circuit breaker around retrieval sources
# ----------------------------------------------------------------------
def test_breaker_trips_to_exact_and_recovers_half_open():
    factors = _factors(9, 300, 6)
    snap = ShardedCatalog(factors, num_shards=3).snapshot()
    quality = np.stack([_quality(90 + b, 300) for b in range(4)])
    oracle = ExactTopK().pools(quality, 6, snap)

    clock = ManualClock()
    primary = QuantileFunnel()
    breaker = BreakerSource(primary, failure_threshold=2, cooldown=10.0, clock=clock)
    plan = FaultPlan(clock=clock)
    plan.attach(breaker)  # hooks land on the primary, never the fallback
    plan.fail_source(times=3)

    # Two consecutive primary failures trip the breaker; pools keep
    # flowing from the exact fallback — recall is oracle-grade.
    for _ in range(2):
        np.testing.assert_array_equal(breaker.pools(quality, 6, snap), oracle)
    assert breaker.breaker.state == "open"
    # While open (cooldown pending) the primary is not even consulted:
    # the third armed failure stays armed.
    np.testing.assert_array_equal(breaker.pools(quality, 6, snap), oracle)
    assert plan.stats()["source_failures"] == 2
    # Half-open probe after the cooldown: the primary fails once more,
    # so the breaker re-opens (a second trip)...
    clock.advance(10.0)
    np.testing.assert_array_equal(breaker.pools(quality, 6, snap), oracle)
    assert breaker.breaker.state == "open" and breaker.breaker.trips == 2
    # ...and the next probe succeeds, closing it for good.
    clock.advance(10.0)
    np.testing.assert_array_equal(breaker.pools(quality, 6, snap), oracle)
    assert breaker.breaker.state == "closed"
    stats = breaker.stats()
    assert stats["breaker"]["primary_failures"] == 3
    assert stats["breaker"]["fallback_batches"] == 4
    assert stats["fallback_rows"] == 4 * quality.shape[0]
    assert stats["primary"]["source"] == "quantile"


def test_slow_shard_counts_as_deadline_blowout():
    factors = _factors(10, 240, 5)
    snap = ShardedCatalog(factors, num_shards=3).snapshot()
    quality = np.stack([_quality(50, 240)])
    oracle = ExactTopK().pools(quality, 5, snap)
    clock = ManualClock()
    primary = ExactTopK()
    breaker = BreakerSource(
        primary, failure_threshold=1, cooldown=30.0,
        slow_threshold=0.2, clock=clock,
    )
    plan = FaultPlan(clock=clock)
    plan.attach(breaker)
    plan.slow_shard(1, seconds=0.5, times=None)
    # The slow batch still returns its (late, correct) pools, but the
    # blowout trips the breaker.
    np.testing.assert_array_equal(breaker.pools(quality, 5, snap), oracle)
    assert breaker.breaker.state == "open"
    assert breaker.stats()["breaker"]["slow_calls"] == 1
    # Tripped traffic routes to the clean fallback: no injected delay.
    before = clock()
    np.testing.assert_array_equal(breaker.pools(quality, 5, snap), oracle)
    assert clock() == before


def test_runtime_serves_identically_through_a_tripped_breaker():
    factors = _factors(11, 300, 6)
    requests = [
        Request(quality=_quality(60 + i, 300), k=3, mode="sample", seed=500 + i)
        for i in range(4)
    ]
    reference_config = ServingConfig(
        workers=0, clock=ManualClock(), funnel_width=10, source=ExactTopK()
    )
    with ServingRuntime(
        ShardedCatalog(factors, num_shards=3), config=reference_config
    ) as rt:
        futures = rt.submit_many(requests)
        rt.flush()
        reference = [f.result() for f in futures]

    clock = ManualClock()
    plan = FaultPlan(clock=clock)
    plan.fail_source(times=None)  # the primary never works again
    breaker = BreakerSource(QuantileFunnel(), failure_threshold=1, clock=clock)
    config = ServingConfig(
        workers=0, clock=clock, funnel_width=10, source=breaker, fault_plan=plan
    )
    with ServingRuntime(ShardedCatalog(factors, num_shards=3), config=config) as rt:
        futures = rt.submit_many(requests)
        rt.flush()
        served = [f.result() for f in futures]
    for mine, ref in zip(served, reference):
        _same_response(mine, ref)
    assert breaker.breaker.state == "open"


def test_source_unavailable_without_a_breaker_is_isolated_per_request():
    factors = _factors(12, 200, 5)
    clock = ManualClock()
    plan = FaultPlan(clock=clock)
    plan.fail_source(times=None)
    config = ServingConfig(
        workers=0, clock=clock, funnel_width=8,
        source=QuantileFunnel(), fault_plan=plan,
    )
    with ServingRuntime(ShardedCatalog(factors, num_shards=2), config=config) as rt:
        future = rt.submit(Request(quality=_quality(12, 200), k=2, mode="map"))
        rt.flush()
        with pytest.raises(SourceUnavailable, match="injected fault"):
            future.result()


# ----------------------------------------------------------------------
# MicroBatcher lifecycle: close semantics, cancellation, retry caps
# ----------------------------------------------------------------------
def test_close_without_drain_fails_queued_futures_with_shutdown_error():
    clock = ManualClock()
    batcher = MicroBatcher(
        lambda requests, tag: list(requests), workers=0, clock=clock
    )
    futures = [batcher.submit(i) for i in range(3)]
    batcher.close(drain=False)
    for future in futures:
        with pytest.raises(ShutdownError, match="closed"):
            future.result(timeout=0)
    with pytest.raises(RuntimeError, match="closed"):  # the legacy spelling
        batcher.submit(99)
    stats = batcher.stats
    assert stats["failed"] == 3 and stats["served"] == 0


def test_submit_racing_close_never_strands_a_future():
    barrier = threading.Barrier(5)
    batcher = MicroBatcher(
        lambda requests, tag: list(requests), max_batch=8, max_wait=0.0, workers=1
    )
    futures: list = []
    lock = threading.Lock()
    shutdown_raises = [0]

    def submitter() -> None:
        barrier.wait()
        for i in range(50):
            try:
                future = batcher.submit(i)
            except ShutdownError:
                shutdown_raises[0] += 1
            else:
                with lock:
                    futures.append(future)

    threads = [threading.Thread(target=submitter) for _ in range(4)]
    for thread in threads:
        thread.start()
    barrier.wait()
    batcher.close()  # drain=True: racing submits are served or refused
    for thread in threads:
        thread.join()
    # close() may have finished its drain before the last racing submit
    # landed; those stragglers sit resolved-or-pending only if submit
    # accepted them, which it cannot after the closed flag — so flush
    # finds nothing and every accepted future is already resolved.
    assert batcher.pending == 0
    assert all(future.done() for future in futures)
    resolved = sum(1 for future in futures if future.result() is not None)
    assert resolved == len(futures)
    stats = batcher.stats
    assert stats["submitted"] == len(futures)
    assert stats["served"] == len(futures)
    assert stats["submitted"] + shutdown_raises[0] == 200


def test_try_cancel_removes_queued_entries():
    clock = ManualClock()
    batcher = MicroBatcher(
        lambda requests, tag: list(requests), workers=0, clock=clock
    )
    first = batcher.submit("a")
    second = batcher.submit("b")
    third = batcher.submit("c")
    assert batcher.try_cancel(second) is True
    assert second.cancelled()
    assert batcher.pending == 2
    batcher.flush()
    assert first.result() == "a" and third.result() == "c"
    # Already-resolved futures cannot be cancelled.
    assert batcher.try_cancel(first) is False
    stats = batcher.stats
    assert stats["cancelled"] == 1 and stats["served"] == 2
    batcher.close()


def test_solo_retry_counters_and_isolation():
    def serve(requests, tag):
        if len(requests) > 1:
            raise ValueError("batch poisoned")
        if requests[0] == "bad":
            raise ValueError("request 0: bad request")
        return [requests[0]]

    clock = ManualClock()
    batcher = MicroBatcher(serve, workers=0, clock=clock)
    good_one = batcher.submit("x")
    bad = batcher.submit("bad")
    good_two = batcher.submit("y")
    batcher.flush()
    assert good_one.result() == "x" and good_two.result() == "y"
    with pytest.raises(ValueError, match="bad request"):
        bad.result()
    stats = batcher.stats
    assert stats["retries"] == 3
    assert stats["isolated_failures"] == 1
    assert stats["served"] == 2 and stats["failed"] == 1
    batcher.close()


def test_solo_retry_is_capped_by_deadlines():
    clock = ManualClock()

    def serve(requests, tag):
        if len(requests) > 1:
            # The failing batch burns the latency budget: by the time
            # the solo retry loop runs, one member's deadline is gone.
            clock.advance(1.0)
            raise ValueError("batch poisoned")
        return [requests[0]]

    batcher = MicroBatcher(serve, workers=0, clock=clock)
    expired = batcher.submit("a", deadline=0.5)
    alive = batcher.submit("b", deadline=10.0)
    batcher.flush()
    with pytest.raises(DeadlineExceeded):
        expired.result()
    assert alive.result() == "b"
    stats = batcher.stats
    assert stats["deadline_expired"] == 1
    assert stats["retries"] == 1  # only the live member was re-served
    batcher.close()


# ----------------------------------------------------------------------
# Publish retry + concurrent chaos
# ----------------------------------------------------------------------
def test_publish_retries_transient_failures_with_backoff():
    factors = _factors(13, 40, 5)
    clock = ManualClock()
    plan = FaultPlan(clock=clock)
    plan.fail_publish(times=2)
    config = ServingConfig(
        workers=0, clock=clock, fault_plan=plan,
        publish_retries=2, publish_backoff=0.01,
    )
    with ServingRuntime(ItemCatalog(factors), config=config) as rt:
        version = rt.publish(_factors(14, 40, 5))
        assert version == 1
        assert rt.stats["publish_retries"] == 2
        assert clock() == pytest.approx(0.01 + 0.02)  # exponential backoff
        # Exhausted budgets propagate the transient error.
        plan.fail_publish(times=None)
        with pytest.raises(TransientError):
            rt.publish(_factors(15, 40, 5))


def test_concurrent_publish_submit_close_resolves_everything():
    factors = _factors(16, 60, 5)
    plan = FaultPlan()  # real clock: backoff sleeps are tiny
    plan.fail_publish(times=2)
    config = ServingConfig(
        workers=2, max_batch=8, max_wait=0.0005,
        fault_plan=plan, publish_backoff=0.001,
    )
    runtime = ServingRuntime(ItemCatalog(factors), config=config)
    quality = _quality(16, 60)
    futures = []
    for i in range(40):
        futures.append(
            runtime.submit(Request(quality=quality, k=2, mode="sample", seed=i))
        )
        if i == 19:
            assert runtime.publish(_factors(17, 60, 5)) == 1
    runtime.close()
    versions = {future.result().version for future in futures}
    assert versions <= {0, 1} and 1 in versions
    assert runtime.stats["publish_retries"] == 2
    assert runtime.stats["served"] == 40


def test_fault_plan_probability_is_seeded_and_replayable():
    def count_failures(seed: int) -> int:
        plan = FaultPlan(seed=seed)
        plan.fail_serve(times=None, probability=0.3)
        failures = 0
        for _ in range(200):
            try:
                plan.serve_tick(1)
            except TransientError:
                failures += 1
        return failures

    first, second = count_failures(7), count_failures(7)
    assert first == second  # deterministic replay
    assert 20 < first < 120  # and genuinely probabilistic
    assert count_failures(8) != first or count_failures(9) != first
