"""The candidate-generation subsystem: parity, recall, caching.

Contracts pinned here:

1. **Exact parity** — :class:`ExactTopK` is the PR 4 inlined funnel:
   its pools equal ``ShardedSnapshot.shard_topk``, it is the default
   source of :class:`ShardedKDPPServer`, and a server running it
   produces identical seeded samples to the pre-subsystem funnel
   (monolithic engine over the same merged pool).
2. **Approximate sources** — :class:`QuantileFunnel` pools are exact
   whenever the threshold mask fills (and recall@funnel is 1.0 there);
   :class:`IVFIndex` reaches recall@funnel ≥ 0.95 on structured
   synthetic catalogs where quality follows the factor geometry.
3. **Funnel cache** — repeat visitors hit, hits reproduce the source's
   pools bit for bit, publish() invalidates, a changed quality vector
   under the same user id cannot serve a stale pool, and the cache
   stays consistent under concurrent micro-batched submits.
"""

import threading

import numpy as np
import pytest

from repro.retrieval import (
    CandidateSource,
    ExactTopK,
    FunnelCache,
    IVFIndex,
    QuantileFunnel,
    shard_offsets,
    shard_snapshots,
)
from repro.serving import (
    ItemCatalog,
    KDPPServer,
    Request,
    ServingRuntime,
    ShardedCatalog,
    ShardedKDPPServer,
)


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality_batch(seed: int, batch: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=(batch, m)))


def _clustered_world(seed: int, m: int, r: int, batch: int, clusters: int = 12):
    """Factors drawn around cluster centers and quality following the
    same geometry (``q_u = exp(t · V u)``) — the regime IVF probing is
    built for: a user's high-quality items live in few cells."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, r))
    assignment = rng.integers(0, clusters, size=m)
    factors = centers[assignment] + 0.35 * rng.normal(size=(m, r))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    users = centers[rng.integers(0, clusters, size=batch)]
    users += 0.2 * rng.normal(size=(batch, r))
    quality = np.exp(2.0 * (factors @ users.T).T)
    return factors, quality


def _recall(pools: np.ndarray, reference: np.ndarray) -> float:
    per_row = [
        len(set(pools[b].tolist()) & set(reference[b].tolist()))
        / len(set(reference[b].tolist()))
        for b in range(reference.shape[0])
    ]
    return float(np.mean(per_row))


# ----------------------------------------------------------------------
# Snapshot duck-typing helpers
# ----------------------------------------------------------------------
def test_shard_helpers_cover_both_catalog_flavors():
    factors = _factors(0, 120, 6)
    mono = ItemCatalog(factors).snapshot()
    sharded = ShardedCatalog(factors, num_shards=4).snapshot()
    np.testing.assert_array_equal(shard_offsets(mono), [0, 120])
    np.testing.assert_array_equal(sharded.offsets, shard_offsets(sharded))
    assert shard_snapshots(mono) == (mono,)
    assert len(shard_snapshots(sharded)) == 4


def test_snapshot_extension_builds_once_and_keeps_none_results():
    factors = _factors(1, 60, 4)
    for snap in (
        ItemCatalog(factors).snapshot(),
        ShardedCatalog(factors, num_shards=3).snapshot(),
    ):
        calls = []

        def build(s):
            calls.append(s)
            return None  # a legitimate "index declined" result

        assert snap.extension("probe", build) is None
        assert snap.extension("probe", build) is None
        assert len(calls) == 1  # None was cached, not rebuilt


def test_source_validation():
    factors = _factors(2, 80, 4)
    snap = ShardedCatalog(factors, num_shards=2).snapshot()
    source = ExactTopK()
    with pytest.raises(ValueError, match="quality stack"):
        source.pools(np.ones(80), 4, snap)
    with pytest.raises(ValueError, match="funnel width"):
        source.pools(np.ones((2, 80)), 0, snap)
    with pytest.raises(ValueError, match="sketch_size"):
        QuantileFunnel(sketch_size=0)
    with pytest.raises(ValueError, match="overshoot"):
        QuantileFunnel(overshoot=0.5)
    with pytest.raises(ValueError, match="nprobe"):
        IVFIndex(nprobe=0)
    with pytest.raises(ValueError, match="capacity"):
        FunnelCache(capacity=0)
    with pytest.raises(NotImplementedError):
        CandidateSource().pools(np.ones((1, 80)), 4, snap)


# ----------------------------------------------------------------------
# ExactTopK: the parity oracle
# ----------------------------------------------------------------------
def test_exact_source_equals_shard_topk_and_is_default():
    factors = _factors(3, 300, 6)
    catalog = ShardedCatalog(factors, num_shards=5)
    snap = catalog.snapshot()
    quality = _quality_batch(3, 6, 300)
    source = ExactTopK()
    np.testing.assert_array_equal(
        source.pools(quality, 9, snap), snap.shard_topk(quality, 9)
    )
    server = ShardedKDPPServer(catalog)
    assert isinstance(server.source, ExactTopK)
    assert server.funnel_cache is None
    stats = source.stats()
    assert stats["batches"] == 1 and stats["rows"] == 6
    assert stats["fallback_rows"] == 0 and stats["time_s"] > 0


def test_exact_source_serves_identical_seeded_samples_to_prerefactor_funnel():
    """The pre-subsystem funnel == monolithic engine over the merged
    per-shard top-k pool; the ExactTopK server must reproduce it draw
    for draw."""
    factors = _factors(4, 600, 8)
    catalog = ShardedCatalog(factors, num_shards=5)
    server = ShardedKDPPServer(catalog, funnel_width=12, source=ExactTopK())
    mono = KDPPServer(ItemCatalog(factors))
    quality = _quality_batch(4, 6, 600)
    requests = [
        Request(
            quality=quality[b],
            k=4,
            mode="sample" if b % 2 == 0 else "map",
            seed=40 + b,
        )
        for b in range(6)
    ]
    responses = server.serve(requests)
    snap = catalog.snapshot()
    for b, request in enumerate(requests):
        pool = snap.shard_topk(quality[b : b + 1], max(12, request.k))[0]
        reference = mono.serve(
            [
                Request(
                    quality=quality[b],
                    k=4,
                    mode=request.mode,
                    candidates=pool,
                    seed=40 + b,
                )
            ]
        )[0]
        assert responses[b].items == reference.items
        assert np.isclose(
            responses[b].log_probability, reference.log_probability, rtol=1e-10
        )


# ----------------------------------------------------------------------
# QuantileFunnel
# ----------------------------------------------------------------------
def test_quantile_pools_match_exact_on_wide_shards():
    factors = _factors(5, 6000, 8)
    snap = ShardedCatalog(factors, num_shards=4).snapshot()
    quality = _quality_batch(5, 7, 6000)
    source = QuantileFunnel(sketch_size=256, seed=11)
    pools = source.pools(quality, 16, snap)
    exact = ExactTopK().pools(quality, 16, snap)
    assert _recall(pools, exact) >= 0.95
    filled_cells = pools.shape[0] * 4 - source.stats()["fallback_rows"]
    assert filled_cells > 0
    # Non-fallback cells are exact by construction; with zero fallbacks
    # the whole pool matrix matches item for item and order for order.
    if source.stats()["fallback_rows"] == 0:
        np.testing.assert_array_equal(pools, exact)


def test_quantile_fallback_path_stays_exact():
    # A sketch of 1 with no overshoot headroom misestimates constantly:
    # fallbacks must keep the result exact anyway.
    factors = _factors(6, 4000, 6)
    snap = ShardedCatalog(factors, num_shards=2).snapshot()
    quality = _quality_batch(6, 5, 4000)
    source = QuantileFunnel(sketch_size=2, overshoot=1.0, seed=3)
    pools = source.pools(quality, 25, snap)
    np.testing.assert_array_equal(pools, ExactTopK().pools(quality, 25, snap))


def test_quantile_degenerate_geometry_serves_exactly():
    factors = _factors(7, 90, 5)
    snap = ShardedCatalog(factors, num_shards=3).snapshot()
    quality = _quality_batch(7, 4, 90)
    source = QuantileFunnel()
    pools = source.pools(quality, 10, snap)
    np.testing.assert_array_equal(pools, ExactTopK().pools(quality, 10, snap))
    assert source.stats()["fallback_rows"] == 4  # whole batch served exactly


def test_quantile_end_to_end_seeded_samples_match_exact_source():
    factors = _factors(8, 5000, 8)
    catalog = ShardedCatalog(factors, num_shards=4)
    quality = _quality_batch(8, 6, 5000)
    requests = [
        Request(quality=quality[b], k=5, mode="sample", seed=800 + b)
        for b in range(6)
    ]
    exact_server = ShardedKDPPServer(catalog, funnel_width=24)
    quantile_server = ShardedKDPPServer(
        catalog, funnel_width=24, source=QuantileFunnel(seed=1)
    )
    exact_responses = exact_server.serve(requests)
    quantile_responses = quantile_server.serve(requests)
    for left, right in zip(exact_responses, quantile_responses):
        if quantile_server.source.stats()["fallback_rows"] == 0:
            assert left.items == right.items


def test_quantile_sketch_is_per_version():
    factors = _factors(9, 4000, 6)
    catalog = ShardedCatalog(factors, num_shards=2)
    source = QuantileFunnel(sketch_size=64, seed=5)
    quality = _quality_batch(9, 3, 4000)
    old_snap = catalog.snapshot()
    source.pools(quality, 8, old_snap)
    key = ("quantile-sketch", 64, 5)
    old_sketch = old_snap.extension(key, lambda s: pytest.fail("should be cached"))
    catalog.publish(_factors(10, 4000, 6))
    new_snap = catalog.snapshot()
    source.pools(quality, 8, new_snap)
    new_sketch = new_snap.extension(key, lambda s: pytest.fail("should be cached"))
    assert not np.array_equal(old_sketch, new_sketch)  # version-seeded redraw


# ----------------------------------------------------------------------
# IVFIndex
# ----------------------------------------------------------------------
def test_ivf_recall_at_funnel_on_structured_catalog():
    factors, quality = _clustered_world(20, 8000, 12, batch=16)
    snap = ShardedCatalog(factors, num_shards=4).snapshot()
    source = IVFIndex(seed=2)
    pools = source.pools(quality, 24, snap)
    exact = ExactTopK().pools(quality, 24, snap)
    assert _recall(pools, exact) >= 0.95
    # Each pool row: unique ids, quality-descending within each shard.
    offsets = shard_offsets(snap)
    for b in range(4):
        row = pools[b]
        assert len(set(row.tolist())) == row.shape[0]
        for s in range(4):
            segment = row[(row >= offsets[s]) & (row < offsets[s + 1])]
            values = quality[b, segment]
            assert np.all(np.diff(values) <= 0)


def test_ivf_small_shards_serve_exactly():
    factors = _factors(21, 400, 6)  # below min_shard_items per shard
    snap = ShardedCatalog(factors, num_shards=4).snapshot()
    quality = _quality_batch(21, 5, 400)
    source = IVFIndex(min_shard_items=256)
    pools = source.pools(quality, 12, snap)
    np.testing.assert_array_equal(pools, ExactTopK().pools(quality, 12, snap))


def test_ivf_index_built_once_per_version():
    factors, quality = _clustered_world(22, 3000, 8, batch=4)
    catalog = ShardedCatalog(factors, num_shards=2)
    source = IVFIndex(seed=7, kmeans_iters=2)
    snap = catalog.snapshot()
    source.pools(quality, 8, snap)
    key = ("ivf-index", None, 2, 7, 256)
    shard_states = [
        shard.extension(key, lambda s: pytest.fail("should be cached"))
        for shard in shard_snapshots(snap)
    ]
    assert all(state is not None for state in shard_states)
    # A second batch reuses the cached layouts (pytest.fail would fire
    # inside extension() if a rebuild were attempted).
    source.pools(quality, 8, snap)


def test_ivf_end_to_end_through_sharded_server():
    factors, quality = _clustered_world(23, 4000, 10, batch=6)
    catalog = ShardedCatalog(factors, num_shards=2)
    server = ShardedKDPPServer(
        catalog, funnel_width=20, source=IVFIndex(seed=3, kmeans_iters=3)
    )
    requests = [
        Request(quality=quality[b], k=5, mode=("sample", "map")[b % 2], seed=b)
        for b in range(6)
    ]
    responses = server.serve(requests)
    for b, response in enumerate(responses):
        assert len(response.items) == 5
        pool = server.funnel_pool(requests[b])
        assert set(response.items) <= set(pool.tolist())


# ----------------------------------------------------------------------
# FunnelCache
# ----------------------------------------------------------------------
def test_funnel_cache_hit_returns_stored_pool():
    cache = FunnelCache(capacity=4)
    quality = _quality_batch(30, 1, 200)[0]
    pool = np.arange(10, dtype=np.int64)
    assert cache.get(7, 0, 16, quality) is None
    cache.put(7, 0, 16, pool, quality)
    hit = cache.get(7, 0, 16, quality)
    np.testing.assert_array_equal(hit, pool)
    assert not hit.flags.writeable
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1


def test_funnel_cache_distinguishes_version_width_and_quality():
    cache = FunnelCache()
    quality = _quality_batch(31, 2, 200)
    cache.put(1, 0, 16, np.arange(16), quality[0])
    assert cache.get(1, 1, 16, quality[0]) is None  # other version
    assert cache.get(1, 0, 32, quality[0]) is None  # other width
    assert cache.get(2, 0, 16, quality[0]) is None  # other user
    # Same key, different quality vector: the fingerprint guard refuses
    # the stale pool (and drops the entry).
    assert cache.get(1, 0, 16, quality[1]) is None
    assert len(cache) == 0


def test_funnel_cache_lru_eviction():
    cache = FunnelCache(capacity=2)
    quality = _quality_batch(32, 1, 50)[0]
    for user in range(3):
        cache.put(user, 0, 8, np.arange(8), quality)
    assert len(cache) == 2
    assert cache.get(0, 0, 8, quality) is None  # oldest evicted
    assert cache.get(2, 0, 8, quality) is not None


def test_funnel_cache_invalidate():
    cache = FunnelCache()
    quality = _quality_batch(33, 1, 50)[0]
    cache.put(1, 0, 8, np.arange(8), quality)
    cache.put(2, 1, 8, np.arange(8), quality)
    assert cache.invalidate(keep_version=1) == 1
    assert cache.get(2, 1, 8, quality) is not None
    assert cache.invalidate() == 1
    assert len(cache) == 0
    assert cache.stats()["invalidations"] == 2


def test_server_reuses_cached_funnel_for_repeat_users():
    factors = _factors(34, 3000, 8)
    catalog = ShardedCatalog(factors, num_shards=3)
    cache = FunnelCache()
    server = ShardedKDPPServer(
        catalog, funnel_width=16, source=QuantileFunnel(seed=4), funnel_cache=cache
    )
    quality = _quality_batch(34, 4, 3000)
    requests = [
        Request(quality=quality[b], k=4, mode="sample", seed=340 + b, user=b)
        for b in range(4)
    ]
    first = server.serve(requests)
    assert cache.stats() == {
        "entries": 4,
        "capacity": 4096,
        "hits": 0,
        "misses": 4,
        "invalidations": 0,
    }
    second = server.serve(requests)
    assert cache.stats()["hits"] == 4
    for left, right in zip(first, second):
        assert left.items == right.items  # same seed, same cached pool
    # Requests without a user id never touch the cache.
    anonymous = Request(quality=quality[0], k=4, mode="map")
    server.serve([anonymous])
    assert cache.stats()["hits"] == 4 and cache.stats()["misses"] == 4


def test_funnel_cache_keys_on_exclusions():
    """Same user, same scores, different exclusion set: the cached pool
    (built from exclusion-zeroed quality) must not be reused — the
    exclusion token is an exact key component, not fingerprint luck."""
    factors = _factors(40, 3000, 8)
    catalog = ShardedCatalog(factors, num_shards=3)
    cache = FunnelCache()
    server = ShardedKDPPServer(
        catalog, funnel_width=16, source=ExactTopK(), funnel_cache=cache
    )
    quality = _quality_batch(40, 1, 3000)[0]
    plain = Request(quality=quality, k=4, mode="map", user=5)
    top_item = int(np.argmax(quality))
    excluding = Request(
        quality=quality,
        k=4,
        mode="map",
        user=5,
        exclude=np.array([top_item]),
    )
    first = server.serve([plain])[0]
    assert top_item in set(server.funnel_pool(plain).tolist())
    second = server.serve([excluding])[0]
    assert top_item not in second.items
    assert top_item not in set(server.funnel_pool(excluding).tolist())
    assert len(cache) == 2  # two distinct keys, no stale sharing
    # And the plain request still hits its own entry.
    again = server.serve([plain])[0]
    assert again.items == first.items
    assert cache.stats()["hits"] >= 1


def test_runtime_publish_invalidates_funnel_cache():
    factors = _factors(35, 2000, 6)
    catalog = ShardedCatalog(factors, num_shards=2)
    cache = FunnelCache()
    from repro.utils.timing import ManualClock

    with ServingRuntime(
        catalog,
        workers=0,
        max_batch=8,
        max_wait=0.0,
        clock=ManualClock(),
        funnel_width=12,
        source=QuantileFunnel(seed=6),
        funnel_cache=cache,
    ) as runtime:
        quality = _quality_batch(35, 2, 2000)
        future = runtime.submit(
            Request(quality=quality[0], k=3, mode="map", user=0)
        )
        runtime.flush()
        future.result(0)
        assert len(cache) == 1
        runtime.publish(_factors(36, 2000, 6))
        assert len(cache) == 0  # eagerly reclaimed on hot swap
        future = runtime.submit(
            Request(quality=quality[0], k=3, mode="map", user=0)
        )
        runtime.flush()
        assert future.result(0).version == 1
        assert len(cache) == 1  # repopulated under the new version
        stats = runtime.stats
        assert stats["retrieval"]["cache"]["invalidations"] == 1
        assert stats["retrieval"]["source"]["source"] == "quantile"


def test_runtime_rejects_source_for_monolithic_catalog():
    factors = _factors(37, 200, 5)
    with pytest.raises(ValueError, match="sharded"):
        ServingRuntime(ItemCatalog(factors), workers=0, source=ExactTopK())
    server = KDPPServer(ItemCatalog(factors))
    with pytest.raises(ValueError, match="not both"):
        ServingRuntime(
            ItemCatalog(factors), server=server, workers=0, source=ExactTopK()
        )


def test_bridge_forwards_source_and_stamps_user_ids():
    from repro.models import MFRecommender
    from repro.serving import RecommenderBridge

    factors = _factors(38, 600, 6)
    catalog = ShardedCatalog(factors, num_shards=3)
    model = MFRecommender(4, 600, dim=8, rng=0)
    cache = FunnelCache()
    bridge = RecommenderBridge(
        model, catalog, source=QuantileFunnel(seed=8), funnel_cache=cache
    )
    assert isinstance(bridge.server.source, QuantileFunnel)
    request = bridge.build_request(2, k=4)
    assert request.user == 2
    first = bridge.recommend([0, 1], k=4, mode="map")
    # recommend() caches responses; go through the server again to see
    # the funnel-cache hit for a repeat visitor.
    bridge.server.serve([bridge.build_request(0, k=4)])
    assert cache.stats()["hits"] >= 1
    assert all(len(response.items) == 4 for response in first)
    with pytest.raises(ValueError, match="not both"):
        RecommenderBridge(
            model, catalog, server=bridge.server, source=QuantileFunnel()
        )


def test_funnel_cache_thread_safety_under_concurrent_submits():
    """Many threads submitting overlapping users through the threaded
    runtime: every future resolves correctly and the cache's counters
    stay consistent (no lost updates, no torn entries)."""
    factors = _factors(39, 3000, 8)
    catalog = ShardedCatalog(factors, num_shards=3)
    cache = FunnelCache()
    quality = _quality_batch(39, 8, 3000)
    with ServingRuntime(
        catalog,
        workers=2,
        max_batch=8,
        max_wait=0.001,
        funnel_width=16,
        source=QuantileFunnel(seed=9),
        funnel_cache=cache,
    ) as runtime:
        futures = []
        futures_lock = threading.Lock()

        def client(c: int) -> None:
            for j in range(12):
                user = (c + j) % 8
                future = runtime.submit(
                    Request(
                        quality=quality[user],
                        k=4,
                        mode="sample",
                        seed=1000 * c + j,
                        user=user,
                    )
                )
                with futures_lock:
                    futures.append((user, future))

        threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [(user, future.result(30)) for user, future in futures]
    assert len(results) == 48
    for user, response in results:
        assert len(response.items) == 4
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == 48
    assert stats["entries"] == 8  # one pool per user, single version/width
    # Every user's pool is the one the source would build fresh.
    snap = catalog.snapshot()
    source = QuantileFunnel(seed=9)
    for user in range(8):
        expected = source.pools(quality[user : user + 1], 16, snap)[0]
        cached = cache.get(user, snap.version, 16, quality[user])
        np.testing.assert_array_equal(cached, expected)


def test_microbatcher_queue_and_admission_counters():
    from repro.serving import MicroBatcher
    from repro.utils.timing import ManualClock

    clock = ManualClock()
    batcher = MicroBatcher(
        lambda requests, tag: [f"ok:{r}" for r in requests],
        max_batch=4,
        max_wait=10.0,
        workers=0,
        clock=clock,
    )
    batcher.submit("a")
    clock.advance(2.0)
    batcher.submit("b")
    stats = batcher.stats
    assert stats["queue_depth"] == 2 and stats["max_queue_depth"] == 2
    assert stats["dispatched"] == 0
    clock.advance(1.0)
    batcher.flush()
    stats = batcher.stats
    assert stats["queue_depth"] == 0 and stats["dispatched"] == 2
    # "a" waited 3s, "b" waited 1s against the injected clock.
    assert stats["admission_wait_total_s"] == pytest.approx(4.0)
    assert stats["admission_wait_max_s"] == pytest.approx(3.0)
