"""Tests for the run_all CLI and the Figure 5 case-study runner."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, run_case_study
from repro.experiments.run_all import EXPERIMENTS, main

TINY = ExperimentScale(
    name="tiny-cli",
    dataset_scale=0.3,
    min_interactions=5,
    dim=8,
    epochs=3,
    patience=0,
    batch_size=32,
    base_lr=0.05,
    lkp_lr=0.1,
    kernel_rank=8,
    kernel_epochs=2,
    kernel_pairs_per_user=1,
    k=3,
    n=3,
)


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["--only", "bogus"])


def test_cli_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["--scale", "galactic"])


def test_cli_runs_table1(capsys):
    assert main(["--scale", "quick", "--only", "table1"]) == 0
    output = capsys.readouterr().out
    assert "beauty-like" in output
    assert "table1 done" in output


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "fig2", "fig3", "fig4", "fig5",
        "ablation_std_dpp", "ablation_diverse",
    }


def test_case_study_structure():
    report = run_case_study(scale=TINY, methods=("BPR", "PS"), subset_size=3)
    assert set(report.top5) == {"BPR", "LkP-PS"}
    for entries in report.top5.values():
        assert len(entries) == 5
        for item, hit, categories in entries:
            assert isinstance(hit, bool)
            assert isinstance(categories, frozenset)
    probabilities = [p for _, _, p in report.subset_probabilities]
    assert np.isclose(sum(probabilities), 1.0, atol=1e-8)
    assert report.train_category_counts
    assert "Case study" in report.text


def test_case_study_picks_category_broad_user():
    report = run_case_study(scale=TINY, methods=("BPR", "PS"))
    # The chosen user's test items must span several categories by design.
    dataset_breadths = [len(c) for _, _, c in report.top5["BPR"]]
    assert report.user >= 0
