"""The online serving runtime: sharding, micro-batching, hot swap.

Three contracts pinned here:

1. **Shard-funnel parity** — `ShardedKDPPServer` over a partitioned
   catalog returns *exactly* what a monolithic `KDPPServer` over the
   unsharded factors returns for the same merged candidate pool
   (identical seeded samples, MAP selections, log-probabilities), and
   `topk-rerank` matches the monolithic full-catalog rerank outright.
2. **Micro-batch admission** — size/time windows against an injected
   clock, futures, per-tag grouping, error isolation, drain-on-close.
3. **Snapshot hot-swap** — in-flight requests complete against the
   version they were admitted under, post-publish requests see the new
   version, and each version's dual spectrum is built exactly once.
"""

import numpy as np
import pytest

from repro.serving import (
    ItemCatalog,
    KDPPServer,
    MicroBatcher,
    Request,
    ServingRuntime,
    ShardedCatalog,
    ShardedKDPPServer,
)
from repro.utils.timing import ManualClock
from repro.utils.topk import top_k_indices, top_k_indices_rows


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality_batch(seed: int, batch: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=(batch, m)))


# ----------------------------------------------------------------------
# ShardedCatalog / ShardedSnapshot
# ----------------------------------------------------------------------
def test_sharded_catalog_partition_covers_items():
    factors = _factors(0, 103, 6)  # deliberately not divisible by shards
    catalog = ShardedCatalog(factors, num_shards=4)
    snap = catalog.snapshot()
    assert catalog.num_items == 103 and catalog.num_shards == 4
    assert snap.offsets[0] == 0 and snap.offsets[-1] == 103
    assert int(snap.shard_sizes().sum()) == 103
    np.testing.assert_allclose(snap.factors, factors, rtol=0, atol=0)


def test_sharded_take_rows_matches_full_gather():
    factors = _factors(1, 90, 5)
    snap = ShardedCatalog(factors, num_shards=3).snapshot()
    rng = np.random.default_rng(2)
    flat = rng.integers(0, 90, size=17)
    np.testing.assert_array_equal(snap.take_rows(flat), factors[flat])
    grid = rng.integers(0, 90, size=(4, 6))
    np.testing.assert_array_equal(snap.take_rows(grid), factors[grid])


def test_top_k_indices_rows_matches_per_row():
    rng = np.random.default_rng(3)
    scores = rng.normal(size=(7, 40))
    for k in (1, 5, 40):
        rows = top_k_indices_rows(scores, k)
        for b in range(7):
            np.testing.assert_array_equal(rows[b], top_k_indices(scores[b], k))
    with pytest.raises(ValueError):
        top_k_indices_rows(scores, 0)
    with pytest.raises(ValueError):
        top_k_indices_rows(scores[0], 3)


def test_shard_topk_matches_per_shard_reference():
    factors = _factors(4, 80, 5)
    snap = ShardedCatalog(factors, num_shards=3).snapshot()
    quality = _quality_batch(4, 5, 80)
    pools = snap.shard_topk(quality, 7)
    for b in range(5):
        expected = []
        for s in range(snap.num_shards):
            lo, hi = int(snap.offsets[s]), int(snap.offsets[s + 1])
            expected.extend((top_k_indices(quality[b, lo:hi], 7) + lo).tolist())
        assert pools[b].tolist() == expected


def test_sharded_validation():
    factors = _factors(5, 40, 4)
    with pytest.raises(ValueError, match="num_shards"):
        ShardedCatalog(factors, num_shards=0)
    with pytest.raises(ValueError, match="num_shards"):
        ShardedCatalog(factors, num_shards=41)
    catalog = ShardedCatalog(factors, num_shards=2)
    with pytest.raises(ValueError, match="item axis"):
        catalog.publish(_factors(5, 39, 4))
    with pytest.raises(ValueError, match="funnel_width"):
        ShardedKDPPServer(catalog, funnel_width=0)
    server = ShardedKDPPServer(catalog)
    with pytest.raises(ValueError, match="quality shape"):
        server.serve([Request(quality=np.ones(3), k=2)])
    with pytest.raises(ValueError, match="k must be positive"):
        server.serve([Request(quality=np.ones(40), k=0)])


# ----------------------------------------------------------------------
# Shard-funnel parity with the monolithic engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def funnel_world():
    factors = _factors(10, 600, 8)
    sharded = ShardedCatalog(factors, num_shards=5)
    return (
        factors,
        sharded,
        ShardedKDPPServer(sharded, funnel_width=12),
        KDPPServer(ItemCatalog(factors)),
    )


def test_sharded_parity_on_merged_pool(funnel_world):
    factors, _, sharded_server, mono = funnel_world
    quality = _quality_batch(11, 8, factors.shape[0])
    requests = [
        Request(
            quality=quality[b],
            k=4,
            mode="sample" if b % 2 == 0 else "map",
            seed=500 + b,
        )
        for b in range(8)
    ]
    batched = sharded_server.serve(requests)
    for b, request in enumerate(requests):
        pool = sharded_server.funnel_pool(request)
        reference = mono.serve(
            [
                Request(
                    quality=quality[b],
                    k=4,
                    mode=request.mode,
                    candidates=pool,
                    seed=500 + b,
                )
            ]
        )[0]
        assert batched[b].items == reference.items
        assert np.isclose(
            batched[b].log_probability, reference.log_probability, rtol=1e-10
        )
        assert batched[b].version == 0


def test_sharded_rerank_matches_monolithic_full_catalog(funnel_world):
    factors, _, sharded_server, mono = funnel_world
    quality = _quality_batch(12, 4, factors.shape[0])
    requests = [
        Request(quality=quality[b], k=5, mode="topk-rerank", rerank_pool=30)
        for b in range(4)
    ]
    # Per-shard top-N contains the global top-N, so for tie-free
    # qualities (continuous scores, as here) the sharded rerank pool —
    # hence the greedy MAP over it — matches the monolithic server's
    # full-catalog rerank exactly.  Exact ties at the pool cutoff may
    # break differently (documented caveat, like tied greedy-MAP gains).
    batched = sharded_server.serve(requests)
    reference = mono.serve(requests)
    for left, right in zip(batched, reference):
        assert left.items == right.items
        assert left.mode == "topk-rerank"


def test_sharded_full_width_funnel_equals_whole_catalog(funnel_world):
    factors, _, _, mono = funnel_world
    sharded = ShardedCatalog(factors, num_shards=5)
    wide = ShardedKDPPServer(sharded, funnel_width=factors.shape[0])
    quality = _quality_batch(13, 3, factors.shape[0])
    for b in range(3):
        request = Request(quality=quality[b], k=4, mode="sample", seed=900 + b)
        pool = wide.funnel_pool(request)
        assert sorted(pool.tolist()) == list(range(factors.shape[0]))
        response = wide.serve([request])[0]
        reference = mono.serve(
            [
                Request(
                    quality=quality[b], k=4, mode="sample",
                    candidates=pool, seed=900 + b,
                )
            ]
        )[0]
        assert response.items == reference.items


def test_sharded_sequential_matches_batched(funnel_world):
    factors, _, sharded_server, _ = funnel_world
    quality = _quality_batch(14, 6, factors.shape[0])
    requests = [
        Request(
            quality=quality[b],
            k=3 + b % 2,
            mode=("sample", "map", "topk-rerank")[b % 3],
            seed=1400 + b,
        )
        for b in range(6)
    ]
    batched = sharded_server.serve(requests)
    sequential = sharded_server.serve_sequential(requests)
    for left, right in zip(batched, sequential):
        assert left.items == right.items
        assert left.mode == right.mode


def test_sharded_exclusions_respected(funnel_world):
    factors, _, sharded_server, _ = funnel_world
    quality = _quality_batch(15, 2, factors.shape[0])
    exclude = np.arange(0, 50)
    responses = sharded_server.serve(
        [
            Request(quality=quality[b], k=4, mode="map", exclude=exclude)
            for b in range(2)
        ]
    )
    for response in responses:
        assert not set(response.items) & set(exclude.tolist())


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------
class _RecordingBackend:
    """A serve() stub recording (batch size, tag) per call."""

    def __init__(self, fail_on=None):
        self.calls = []
        self.fail_on = fail_on

    def __call__(self, requests, tag):
        self.calls.append((len(requests), tag))
        for request in requests:
            if self.fail_on is not None and request == self.fail_on:
                raise ValueError(f"bad request {request}")
        return [f"served:{request}:{tag}" for request in requests]


def test_microbatcher_size_trigger_manual():
    backend = _RecordingBackend()
    clock = ManualClock()
    batcher = MicroBatcher(backend, max_batch=3, max_wait=10.0, workers=0, clock=clock)
    futures = [batcher.submit(i) for i in range(2)]
    assert batcher.poll() == 0  # neither window reached
    futures.append(batcher.submit(2))
    assert batcher.poll() == 1  # size window
    assert [f.result(0) for f in futures] == [
        "served:0:None", "served:1:None", "served:2:None",
    ]
    assert backend.calls == [(3, None)]
    assert batcher.stats["max_batch_size"] == 3


def test_microbatcher_time_trigger_manual():
    backend = _RecordingBackend()
    clock = ManualClock()
    batcher = MicroBatcher(backend, max_batch=64, max_wait=0.5, workers=0, clock=clock)
    future = batcher.submit("lonely")
    assert batcher.poll() == 0
    clock.advance(0.49)
    assert batcher.poll() == 0  # still inside the window
    clock.advance(0.02)
    assert batcher.poll() == 1  # oldest waiter exceeded max_wait
    assert future.result(0) == "served:lonely:None"


def test_microbatcher_caps_batch_and_drains_backlog():
    backend = _RecordingBackend()
    clock = ManualClock()
    batcher = MicroBatcher(backend, max_batch=4, max_wait=0.0, workers=0, clock=clock)
    futures = batcher.submit_many(list(range(10)))
    assert batcher.poll() == 3  # 4 + 4 + 2
    assert [size for size, _ in backend.calls] == [4, 4, 2]
    assert all(f.done() for f in futures)


def test_microbatcher_groups_by_tag():
    backend = _RecordingBackend()
    clock = ManualClock()
    batcher = MicroBatcher(backend, max_batch=8, max_wait=0.0, workers=0, clock=clock)
    batcher.submit("a", tag="v0")
    batcher.submit("b", tag="v0")
    batcher.submit("c", tag="v1")
    assert batcher.poll() == 1  # one dispatch...
    assert sorted(backend.calls) == [(1, "v1"), (2, "v0")]  # ...two serves


def test_microbatcher_error_isolation():
    backend = _RecordingBackend(fail_on=13)
    batcher = MicroBatcher(backend, max_batch=8, workers=0, clock=ManualClock())
    good = batcher.submit(7)
    bad = batcher.submit(13)
    also_good = batcher.submit(21)
    batcher.flush()
    assert good.result(0) == "served:7:None"
    assert also_good.result(0) == "served:21:None"
    with pytest.raises(ValueError, match="bad request 13"):
        bad.result(0)
    stats = batcher.stats
    assert stats["served"] == 2 and stats["failed"] == 1


def test_microbatcher_survives_cancelled_futures():
    """A caller-cancelled future is dropped at dispatch — batch
    neighbors still resolve and the batcher keeps serving (a cancelled
    future must not blow up result delivery)."""
    backend = _RecordingBackend()
    batcher = MicroBatcher(backend, max_batch=8, workers=0, clock=ManualClock())
    kept = batcher.submit("kept")
    doomed = batcher.submit("doomed")
    assert doomed.cancel()
    also_kept = batcher.submit("also-kept")
    batcher.flush()
    assert kept.result(0) == "served:kept:None"
    assert also_kept.result(0) == "served:also-kept:None"
    assert doomed.cancelled()
    stats = batcher.stats
    assert stats["cancelled"] == 1 and stats["served"] == 2
    # The cancelled request was never handed to the backend.
    assert backend.calls == [(2, None)]
    # And the batcher still works afterwards.
    later = batcher.submit("later")
    batcher.flush()
    assert later.result(0) == "served:later:None"


def test_microbatcher_close_drains_and_rejects():
    backend = _RecordingBackend()
    batcher = MicroBatcher(backend, max_batch=8, max_wait=99.0, workers=0,
                           clock=ManualClock())
    future = batcher.submit("straggler")
    batcher.close()
    assert future.result(0) == "served:straggler:None"
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit("late")


def test_microbatcher_threaded_serves_everything():
    backend = _RecordingBackend()
    with MicroBatcher(backend, max_batch=8, max_wait=0.001, workers=2) as batcher:
        futures = [batcher.submit(i) for i in range(50)]
        results = [f.result(10) for f in futures]
    assert results == [f"served:{i}:None" for i in range(50)]
    stats = batcher.stats
    assert stats["served"] == 50 and stats["submitted"] == 50
    assert stats["batches"] >= 1


# ----------------------------------------------------------------------
# ServingRuntime: hot swap + lifecycle
# ----------------------------------------------------------------------
@pytest.fixture()
def runtime_world():
    factors = _factors(20, 120, 6)
    quality = _quality_batch(20, 6, 120)
    return factors, quality


def test_runtime_inflight_requests_keep_admission_version(runtime_world):
    factors, quality = runtime_world
    catalog = ItemCatalog(factors)
    clock = ManualClock()
    with ServingRuntime(catalog, workers=0, max_batch=64, max_wait=1.0,
                        clock=clock) as runtime:
        old_snapshot = catalog.snapshot()
        inflight = runtime.submit(Request(quality=quality[0], k=3, mode="sample",
                                          seed=77))
        refreshed = _factors(21, 120, 6)
        assert runtime.publish(refreshed) == 1
        fresh = runtime.submit(Request(quality=quality[1], k=3, mode="sample",
                                       seed=78))
        runtime.flush()
        first, second = inflight.result(0), fresh.result(0)
        # Admission-version pinning: the pre-publish request served the
        # old factors even though serving happened after the swap.
        assert first.version == 0 and second.version == 1
        reference_old = KDPPServer(ItemCatalog(factors)).serve(
            [Request(quality=quality[0], k=3, mode="sample", seed=77)]
        )[0]
        reference_new = KDPPServer(ItemCatalog(refreshed)).serve(
            [Request(quality=quality[1], k=3, mode="sample", seed=78)]
        )[0]
        assert first.items == reference_old.items
        assert second.items == reference_new.items
        # The displaced snapshot is intact (double buffering).
        np.testing.assert_array_equal(old_snapshot.factors, factors)


def test_runtime_spectra_built_exactly_once_per_version(runtime_world):
    factors, _ = runtime_world
    catalog = ItemCatalog(factors)
    with ServingRuntime(catalog, workers=0, max_batch=64, max_wait=0.0,
                        clock=ManualClock()) as runtime:
        uniform = np.ones(factors.shape[0])
        snapshot_v0 = catalog.snapshot()
        for _ in range(3):  # repeated uniform-quality batches share one eigh
            future = runtime.submit(Request(quality=uniform, k=3, mode="sample",
                                            seed=5))
            runtime.flush()
            future.result(0)
        assert snapshot_v0.spectrum_builds == 1
        runtime.publish(_factors(22, *factors.shape))
        snapshot_v1 = catalog.snapshot()
        assert snapshot_v1 is not snapshot_v0
        assert snapshot_v1.spectrum_builds == 0  # invalidated by creation...
        for _ in range(2):
            future = runtime.submit(Request(quality=uniform, k=3, mode="sample",
                                            seed=6))
            runtime.flush()
            future.result(0)
        assert snapshot_v1.spectrum_builds == 1  # ...and rebuilt exactly once
        assert snapshot_v0.spectrum_builds == 1  # old readers untouched


def test_runtime_threaded_hot_swap_under_traffic(runtime_world):
    factors, quality = runtime_world
    catalog = ShardedCatalog(factors, num_shards=3)
    generations = [factors, _factors(23, *factors.shape), _factors(24, *factors.shape)]
    with ServingRuntime(catalog, workers=2, max_batch=8, max_wait=0.001,
                        funnel_width=10) as runtime:
        futures = []
        for wave, generation in enumerate(generations):
            if wave:
                runtime.publish(generation)
            for b in range(6):
                futures.append(
                    (wave, runtime.submit(
                        Request(quality=quality[b], k=3, mode="map")
                    ))
                )
        results = [(wave, f.result(10)) for wave, f in futures]
    for wave, response in results:
        # A request may only be served by its admission version: publish
        # happens-before the submits of its own wave and every later one.
        assert response.version == wave
        assert len(response.items) == 3


def test_runtime_serve_now_and_stats(runtime_world):
    factors, quality = runtime_world
    with ServingRuntime(ItemCatalog(factors), workers=0,
                        clock=ManualClock()) as runtime:
        responses = runtime.serve_now(
            [Request(quality=quality[b], k=2, mode="map") for b in range(3)]
        )
        assert all(len(r.items) == 2 and r.version == 0 for r in responses)
        runtime.submit(Request(quality=quality[0], k=2, mode="map"))
        assert runtime.pending == 1
        runtime.flush()
        stats = runtime.stats
        assert stats["submitted"] == 1 and stats["served"] == 1
        assert stats["catalog_version"] == 0


def test_runtime_microbatching_beats_sequential_semantics(runtime_world):
    """Batched-through-the-runtime must equal direct engine serving."""
    factors, quality = runtime_world
    catalog = ItemCatalog(factors)
    server = KDPPServer(catalog)
    with ServingRuntime(catalog, server=server, workers=0, max_batch=64,
                        max_wait=0.0, clock=ManualClock()) as runtime:
        requests = [
            Request(quality=quality[b], k=3, mode="sample", seed=300 + b)
            for b in range(6)
        ]
        futures = runtime.submit_many(requests)
        runtime.flush()
        direct = server.serve(requests)
        for future, reference in zip(futures, direct):
            assert future.result(0).items == reference.items


def test_bridge_dispatches_funnel_server_for_sharded_catalog():
    from repro.models import MFRecommender
    from repro.serving import RecommenderBridge

    factors = _factors(31, 90, 6)
    catalog = ShardedCatalog(factors, num_shards=3)
    model = MFRecommender(4, 90, dim=8, rng=0)
    bridge = RecommenderBridge(model, catalog)
    assert isinstance(bridge.server, ShardedKDPPServer)
    response = bridge.recommend([0], k=4, mode="map")[0]
    assert len(response.items) == 4 and response.version == 0


# ----------------------------------------------------------------------
# Runtime + sharded catalog end to end
# ----------------------------------------------------------------------
def test_runtime_sharded_end_to_end():
    factors = _factors(30, 2000, 8)
    quality = _quality_batch(30, 12, 2000)
    catalog = ShardedCatalog(factors, num_shards=8)
    mono = KDPPServer(ItemCatalog(factors))
    with ServingRuntime(catalog, workers=0, max_batch=4, max_wait=0.0,
                        clock=ManualClock(), funnel_width=16) as runtime:
        futures = [
            runtime.submit(
                Request(quality=quality[b], k=5, mode="sample", seed=2000 + b)
            )
            for b in range(12)
        ]
        runtime.flush()
        sharded_server = runtime.server
        for b, future in enumerate(futures):
            response = future.result(0)
            request = Request(quality=quality[b], k=5, mode="sample", seed=2000 + b)
            pool = sharded_server.funnel_pool(request)
            reference = mono.serve(
                [Request(quality=quality[b], k=5, mode="sample",
                         candidates=pool, seed=2000 + b)]
            )[0]
            assert response.items == reference.items
