"""The serving engine: batched results pinned to per-user serving.

The contract of :class:`repro.serving.KDPPServer` is that batching is a
pure performance transform — for a fixed seeded RNG per request, the
batch path returns exactly what the PR 2 one-request-at-a-time loop
(``KDPP.from_factors(...).sample(rng)`` / ``greedy_map``) returns,
including heterogeneous ``k``, exclusion sets, rank-deficient quality
vectors (zeros) and candidate slices.  The suites below pin that
contract against *manually built* per-user references (not just
``serve_sequential``), plus the catalog/bridge plumbing around it.
"""

import numpy as np
import pytest

from repro.dpp import (
    KDPP,
    LowRankKernel,
    batched_greedy_map_shared,
    batched_greedy_map_stacked,
    batched_log_esp,
    batched_sample_elementary_shared,
    batched_sample_elementary_stacked,
    greedy_map,
    log_esp,
)
from repro.dpp.kdpp import _sample_from_elementary
from repro.models import MFRecommender
from repro.serving import (
    ItemCatalog,
    KDPPServer,
    RecommenderBridge,
    Request,
    quality_from_scores,
)
from repro.utils.topk import top_k_indices


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality_batch(seed: int, batch: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=(batch, m)))


# ----------------------------------------------------------------------
# ItemCatalog
# ----------------------------------------------------------------------
def test_catalog_validation_and_snapshots():
    with pytest.raises(ValueError):
        ItemCatalog(np.ones(3))
    with pytest.raises(ValueError):
        ItemCatalog(np.array([[1.0, np.nan]]))
    factors = _factors(0, 30, 6)
    catalog = ItemCatalog(factors)
    assert catalog.num_items == 30 and catalog.rank == 6
    # The snapshot is a copy and read-only: the engine's caches key on
    # the version token alone, so factors must be immutable per version.
    factors[0, 0] = 99.0
    assert catalog.factors[0, 0] != 99.0
    with pytest.raises(ValueError):
        catalog.factors[0, 0] = 1.0


def test_catalog_gram_and_spectrum_cached_per_version():
    factors = _factors(1, 25, 5)
    catalog = ItemCatalog(factors)
    np.testing.assert_allclose(catalog.gram(), factors.T @ factors, rtol=1e-12)
    first = catalog.dual_spectrum()
    assert catalog.dual_spectrum() is first  # cached, not recomputed
    eigenvalues, _ = first
    np.testing.assert_allclose(
        np.sort(eigenvalues), np.sort(np.linalg.eigvalsh(factors.T @ factors)),
        rtol=1e-9, atol=1e-12,
    )
    version = catalog.version
    refreshed = _factors(2, 25, 5)
    assert catalog.refresh(refreshed) == version + 1
    assert catalog.version == version + 1
    second = catalog.dual_spectrum()
    assert second is not first
    np.testing.assert_allclose(catalog.gram(), refreshed.T @ refreshed, rtol=1e-12)


def test_catalog_gram_products_refuses_wide_factors(monkeypatch):
    from repro.serving import CatalogSnapshot

    catalog = ItemCatalog(_factors(2, 30, 6))
    monkeypatch.setattr(CatalogSnapshot, "GRAM_PRODUCTS_MAX_BYTES", 1024)
    with pytest.raises(ValueError, match="outer-product table"):
        catalog.gram_products()


def test_catalog_refresh_keeps_item_axis():
    catalog = ItemCatalog(_factors(2, 30, 6))
    with pytest.raises(ValueError, match="item axis"):
        catalog.refresh(_factors(3, 29, 6))
    # A rank change on the same items is a legal retrain.
    assert catalog.refresh(_factors(3, 30, 4)) == 1
    assert catalog.rank == 4


def test_catalog_build_duals_matches_per_user_grams():
    factors = _factors(3, 40, 8)
    catalog = ItemCatalog(factors)
    quality = _quality_batch(3, 6, 40)
    duals = catalog.build_duals(quality**2)
    for b in range(quality.shape[0]):
        scaled = quality[b][:, None] * factors
        np.testing.assert_allclose(duals[b], scaled.T @ scaled, rtol=1e-10, atol=1e-12)


# ----------------------------------------------------------------------
# Batched DPP primitives
# ----------------------------------------------------------------------
def test_batched_log_esp_matches_scalar_including_hetero_k():
    rng = np.random.default_rng(4)
    spectra = np.abs(rng.normal(size=(7, 12))) * np.exp(rng.normal(scale=3, size=(7, 12)))
    spectra[5, 3:] = 0.0  # rank 3 row
    for k in (1, 3, 7):
        batched = batched_log_esp(spectra, k)
        for b in range(7):
            expected = log_esp(spectra[b], k)
            if np.isfinite(expected):
                assert np.isclose(batched[b], expected, rtol=1e-12)
            else:
                assert batched[b] == -np.inf
    ks = np.array([1, 2, 3, 4, 5, 2, 6])
    batched = batched_log_esp(spectra, ks)
    for b in range(7):
        expected = log_esp(spectra[b], int(ks[b]))
        assert batched[b] == -np.inf if not np.isfinite(expected) else np.isclose(
            batched[b], expected, rtol=1e-12
        )
    assert np.all(batched_log_esp(spectra, 0) == 0.0)
    with pytest.raises(ValueError):
        batched_log_esp(spectra, 13)
    with pytest.raises(ValueError):
        batched_log_esp(spectra[0], 2)


def test_elementary_choice_clamps_rounded_up_uniform():
    # u < 1 strictly, but u * total can round to exactly total; the
    # right-sided CDF search must not step past the last item then.
    from repro.dpp.kdpp import _elementary_choice

    class _EdgeRng:
        def random(self):
            return 1.0 - 2.0**-53

    norms = np.array([1e-3, 3.0])  # 3.0 * (1 - 2^-53) rounds to 3.0... not
    # necessarily on every platform, so force the exact edge with u -> 1.0:
    class _OneRng:
        def random(self):
            return 1.0

    assert _elementary_choice(norms, _EdgeRng()) in (0, 1)
    assert _elementary_choice(norms, _OneRng()) == 1


def _orthonormal_bases(seed: int, batch: int, ground: int, p: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bases = np.empty((batch, ground, p))
    for b in range(batch):
        q, _ = np.linalg.qr(rng.normal(size=(ground, p)))
        bases[b] = q
    return bases


def test_batched_stacked_elementary_sampler_matches_reference():
    bases = _orthonormal_bases(5, 9, 40, 4)
    rngs = [np.random.default_rng(100 + b) for b in range(9)]
    batched = batched_sample_elementary_stacked(bases, rngs)
    for b in range(9):
        reference = _sample_from_elementary(
            bases[b].copy(), np.random.default_rng(100 + b)
        )
        assert batched[b] == reference


def test_batched_shared_elementary_sampler_matches_reference():
    m, r, p, batch = 50, 8, 4, 6
    factors = _factors(6, m, r)
    quality = _quality_batch(6, batch, m)
    rng = np.random.default_rng(7)
    coefficients = np.empty((batch, r, p))
    for b in range(batch):
        # Orthonormalize Diag(q) V W by QR in coefficient space.
        scaled = quality[b][:, None] * factors
        raw = rng.normal(size=(r, p))
        basis, _ = np.linalg.qr(scaled @ raw)
        coefficients[b], *_ = np.linalg.lstsq(scaled, basis, rcond=None)
    table = ItemCatalog(factors).gram_products()
    for use_table in (None, table):
        rngs = [np.random.default_rng(300 + b) for b in range(batch)]
        batched = batched_sample_elementary_shared(
            factors, quality, coefficients, rngs, gram_products=use_table
        )
        for b in range(batch):
            basis = (quality[b][:, None] * factors) @ coefficients[b]
            reference = _sample_from_elementary(
                basis, np.random.default_rng(300 + b)
            )
            assert batched[b] == reference


def test_batched_greedy_map_matches_per_request():
    m, r, batch, k = 60, 6, 8, 5
    factors = _factors(8, m, r)
    quality = _quality_batch(8, batch, m)
    shared = batched_greedy_map_shared(factors, quality, k)
    stack = quality[:, :, None] * factors[None]
    stacked = batched_greedy_map_stacked(stack, k)
    for b in range(batch):
        reference = greedy_map(LowRankKernel(quality[b][:, None] * factors), k)
        assert shared[b] == reference
        assert stacked[b] == reference


def test_batched_greedy_map_early_stop_matches():
    # rank 3 < k: both paths must stop after the rank is exhausted.
    factors = _factors(9, 30, 3)
    quality = _quality_batch(9, 4, 30)
    shared = batched_greedy_map_shared(factors, quality, 6)
    for b in range(4):
        reference = greedy_map(LowRankKernel(quality[b][:, None] * factors), 6)
        assert shared[b] == reference
        assert len(shared[b]) <= 3 + 1


# ----------------------------------------------------------------------
# KDPPServer vs per-user KDPP.from_factors loops
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    factors = _factors(10, 80, 8)
    catalog = ItemCatalog(factors)
    return catalog, KDPPServer(catalog)


def _manual_sample(factors, quality, k, seed):
    dpp = KDPP.from_factors(quality[:, None] * factors, k)
    rng = np.random.default_rng(seed)
    sample = dpp.sample(rng)
    return sample, dpp.log_subset_probability(sample)


def test_server_sample_batch_matches_per_user_loop(world):
    catalog, server = world
    quality = _quality_batch(11, 10, catalog.num_items)
    requests = [
        Request(quality=quality[b], k=4, mode="sample", seed=500 + b)
        for b in range(10)
    ]
    responses = server.serve(requests)
    for b, response in enumerate(responses):
        items, log_probability = _manual_sample(
            catalog.factors, quality[b], 4, 500 + b
        )
        assert response.items == items
        assert np.isclose(response.log_probability, log_probability, rtol=1e-8)
        assert response.mode == "sample" and response.k == 4


def test_server_heterogeneous_k_and_modes(world):
    catalog, server = world
    quality = _quality_batch(12, 9, catalog.num_items)
    requests, references = [], []
    for b in range(9):
        k = 2 + b % 5
        if b % 3 == 0:
            requests.append(Request(quality=quality[b], k=k, mode="map"))
            references.append(
                ("map", greedy_map(LowRankKernel(quality[b][:, None] * catalog.factors), k))
            )
        else:
            requests.append(
                Request(quality=quality[b], k=k, mode="sample", seed=700 + b)
            )
            references.append(
                ("sample", _manual_sample(catalog.factors, quality[b], k, 700 + b)[0])
            )
    responses = server.serve(requests)
    for response, (mode, expected) in zip(responses, references):
        assert response.mode == mode
        assert response.items == expected


def test_server_exclusions_and_rank_deficient_quality(world):
    catalog, server = world
    rng = np.random.default_rng(13)
    quality = _quality_batch(13, 6, catalog.num_items)
    requests, expected = [], []
    for b in range(6):
        exclude = rng.choice(catalog.num_items, size=15, replace=False)
        q = quality[b].copy()
        q[rng.choice(catalog.num_items, size=25, replace=False)] = 0.0  # rank-deficient
        requests.append(
            Request(quality=q, k=4, mode="sample", exclude=exclude, seed=900 + b)
        )
        zeroed = q.copy()
        zeroed[exclude] = 0.0
        expected.append(
            (set(exclude.tolist()), _manual_sample(catalog.factors, zeroed, 4, 900 + b))
        )
    responses = server.serve(requests)
    for response, (excluded, (items, log_probability)) in zip(responses, expected):
        assert response.items == items
        assert not excluded & set(response.items)
        assert np.isclose(response.log_probability, log_probability, rtol=1e-8)


def test_server_candidate_slices_match_sliced_loop(world):
    catalog, server = world
    rng = np.random.default_rng(14)
    quality = _quality_batch(14, 8, catalog.num_items)
    requests, expected = [], []
    for b in range(8):
        candidates = np.sort(rng.choice(catalog.num_items, size=30, replace=False))
        mode = "sample" if b % 2 == 0 else "map"
        requests.append(
            Request(
                quality=quality[b], k=5, mode=mode, candidates=candidates,
                seed=1100 + b,
            )
        )
        sliced = quality[b][candidates][:, None] * catalog.factors[candidates]
        if mode == "sample":
            dpp = KDPP.from_factors(sliced, 5)
            local = dpp.sample(np.random.default_rng(1100 + b))
        else:
            local = greedy_map(LowRankKernel(sliced), 5)
        expected.append([int(candidates[i]) for i in local])
    responses = server.serve(requests)
    for response, items in zip(responses, expected):
        assert response.items == items


def test_server_topk_rerank_matches_manual_pool(world):
    catalog, server = world
    quality = _quality_batch(15, 5, catalog.num_items)
    requests = [
        Request(quality=quality[b], k=4, mode="topk-rerank", rerank_pool=20)
        for b in range(5)
    ]
    responses = server.serve(requests)
    for b, response in enumerate(responses):
        pool = top_k_indices(quality[b], 20)
        sliced = quality[b][pool][:, None] * catalog.factors[pool]
        local = greedy_map(LowRankKernel(sliced), 4)
        assert response.items == [int(pool[i]) for i in local]
        assert response.mode == "topk-rerank"


def test_server_serve_sequential_is_the_same_oracle(world):
    catalog, server = world
    quality = _quality_batch(16, 7, catalog.num_items)
    requests = [
        Request(
            quality=quality[b],
            k=3 + b % 3,
            mode=("sample", "map", "topk-rerank")[b % 3],
            seed=1300 + b,
        )
        for b in range(7)
    ]
    batched = server.serve(requests)
    sequential = server.serve_sequential(requests)
    for left, right in zip(batched, sequential):
        assert left.items == right.items
        if left.log_probability is None:
            assert right.log_probability is None
        else:
            assert np.isclose(left.log_probability, right.log_probability, rtol=1e-8)


def test_server_request_validation(world):
    catalog, server = world
    good = np.ones(catalog.num_items)
    with pytest.raises(ValueError, match="quality shape"):
        server.serve([Request(quality=np.ones(3), k=2)])
    with pytest.raises(ValueError, match="non-negative"):
        server.serve([Request(quality=-good, k=2)])
    with pytest.raises(ValueError, match="mode"):
        server.serve([Request(quality=good, k=2, mode="bogus")])
    with pytest.raises(ValueError, match="k must be positive"):
        server.serve([Request(quality=good, k=0)])
    with pytest.raises(ValueError, match="exceeds ground-set size"):
        server.serve([Request(quality=good, k=5, candidates=np.arange(3))])
    with pytest.raises(ValueError, match="unique"):
        server.serve([Request(quality=good, k=2, candidates=np.array([1, 1, 2]))])
    with pytest.raises(ValueError, match="exclusion ids"):
        server.serve([Request(quality=good, k=2, exclude=np.array([-1]))])
    with pytest.raises(ValueError, match="own candidate"):
        server.serve(
            [Request(quality=good, k=2, mode="topk-rerank", candidates=np.arange(5))]
        )
    with pytest.raises(ValueError):
        KDPPServer(catalog, rerank_pool=0)


def test_server_uniform_quality_served_from_cached_spectrum(world):
    catalog, server = world
    # Constant-quality requests reuse the catalog's version-cached dual
    # spectrum: no per-batch dual build may happen for them.
    catalog.dual_spectrum()  # warm the version cache
    quality = np.full(catalog.num_items, 1.7)
    requests = [
        Request(quality=quality, k=4, mode="sample", seed=1500 + b) for b in range(4)
    ] + [Request(quality=quality, k=4, mode="map")]
    # Serving pins the current snapshot, so the guard patches it (not
    # the catalog facade) to prove no dual build happens.
    snap = catalog.snapshot()
    original = snap.build_duals
    snap.build_duals = lambda *_: (_ for _ in ()).throw(
        AssertionError("uniform requests must not rebuild duals")
    )
    try:
        responses = server.serve(requests)
    finally:
        snap.build_duals = original
    for b in range(4):
        items, log_probability = _manual_sample(
            catalog.factors, quality, 4, 1500 + b
        )
        assert responses[b].items == items
        assert np.isclose(responses[b].log_probability, log_probability, rtol=1e-8)
    # Exactly uniform quality ties every initial MAP gain, so batched
    # and per-user greedy may legitimately pick different (equally
    # greedy) sets; assert the response is self-consistent instead.
    map_response = responses[4]
    assert len(set(map_response.items)) == 4
    dpp = KDPP.from_factors(quality[:, None] * catalog.factors, 4)
    assert np.isclose(
        map_response.log_probability,
        dpp.log_subset_probability(map_response.items),
        rtol=1e-8,
    )


def test_server_k_exceeds_effective_candidates_raises_clearly(world):
    """k above the positive-quality count must fail at validation, not
    surface a downstream eigensolver/ESP error — for every mode."""
    catalog, server = world
    sparse = np.zeros(catalog.num_items)
    sparse[:3] = 1.0  # only 3 selectable items
    for mode in ("sample", "map"):
        with pytest.raises(ValueError, match="effective candidate count 3"):
            server.serve([Request(quality=sparse, k=4, mode=mode)])
    # Exclusions shrink the effective set the same way.
    rich = np.ones(catalog.num_items)
    exclude = np.arange(catalog.num_items - 2)
    with pytest.raises(ValueError, match="effective candidate count 2"):
        server.serve([Request(quality=rich, k=3, mode="map", exclude=exclude)])
    # Candidate slices count only their own positive entries.
    sliced = np.zeros(catalog.num_items)
    sliced[10:12] = 1.0
    with pytest.raises(ValueError, match="effective candidate count 2"):
        server.serve(
            [Request(quality=sliced, k=3, mode="sample", candidates=np.arange(8, 14))]
        )
    # k within the effective count still works (and the error is not
    # about total ground size).
    fits = server.serve([Request(quality=sparse, k=3, mode="map")])
    assert sorted(fits[0].items) == [0, 1, 2]


def test_server_effective_count_error_names_request_in_hetero_batch(world):
    """A heterogeneous batch reports the offending request's index."""
    catalog, server = world
    good = _quality_batch(40, 2, catalog.num_items)
    starving = np.zeros(catalog.num_items)
    starving[5] = 2.0
    batch = [
        Request(quality=good[0], k=3, mode="sample", seed=1),
        Request(quality=good[1], k=5, mode="map"),
        Request(quality=starving, k=2, mode="sample", seed=2),
    ]
    with pytest.raises(ValueError, match="request 2: k=2 exceeds the effective"):
        server.serve(batch)
    with pytest.raises(ValueError, match="request 2"):
        server.serve_sequential(batch)
    # The same batch without the starving request serves fine.
    assert len(server.serve(batch[:2])) == 2


def test_server_responses_are_version_stamped(world):
    catalog, server = world
    quality = _quality_batch(41, 2, catalog.num_items)
    before = catalog.version
    responses = server.serve(
        [Request(quality=quality[b], k=3, mode="map") for b in range(2)]
    )
    assert all(response.version == before for response in responses)
    sequential = server.serve_sequential(
        [Request(quality=quality[0], k=3, mode="map")]
    )
    assert sequential[0].version == before


def test_server_rerank_pool_validation(world):
    catalog, server = world
    good = np.ones(catalog.num_items)
    for bad_pool in (0, -5):
        with pytest.raises(ValueError, match="rerank_pool"):
            server.serve(
                [Request(quality=good, k=2, mode="topk-rerank", rerank_pool=bad_pool)]
            )


def test_server_rank_below_k_raises_like_from_factors(world):
    catalog, server = world
    quality = np.ones(catalog.num_items)
    with pytest.raises(ValueError, match="rank is below"):
        server.serve([Request(quality=quality, k=catalog.rank + 1, mode="sample")])
    # MAP tolerates rank deficiency: it stops early like greedy_map.
    responses = server.serve(
        [Request(quality=quality, k=catalog.rank + 1, mode="map")]
    )
    assert len(responses[0].items) <= catalog.rank + 1
    assert responses[0].log_probability is None


# ----------------------------------------------------------------------
# RecommenderBridge
# ----------------------------------------------------------------------
def test_quality_from_scores_transforms():
    scores = np.array([-20.0, -1.0, 0.0, 2.0, 20.0])
    exp = quality_from_scores(scores, "exp")
    np.testing.assert_allclose(exp, np.exp(np.clip(scores, -12, 12)))
    tempered = quality_from_scores(scores, "exp", temperature=4.0)
    np.testing.assert_allclose(tempered, np.exp(np.clip(scores / 4.0, -12, 12)))
    sigmoid = quality_from_scores(scores, "sigmoid")
    np.testing.assert_allclose(sigmoid, 1.0 / (1.0 + np.exp(-scores)) + 1e-4)
    identity = quality_from_scores(scores, "identity")
    assert identity.min() >= 1e-4
    with pytest.raises(ValueError):
        quality_from_scores(scores, "bogus")
    with pytest.raises(ValueError):
        quality_from_scores(scores, "exp", temperature=0.0)


@pytest.fixture()
def bridge_world():
    num_users, num_items, r = 6, 50, 6
    factors = _factors(20, num_items, r)
    catalog = ItemCatalog(factors)
    model = MFRecommender(num_users, num_items, dim=8, rng=0)
    known = [
        np.random.default_rng(30 + u).choice(num_items, size=10, replace=False)
        for u in range(num_users)
    ]
    return model, catalog, known


def test_bridge_excludes_known_items_and_matches_server(bridge_world):
    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known)
    responses = bridge.recommend([0, 1, 2], k=4, mode="map")
    for user, response in zip([0, 1, 2], responses):
        assert not set(known[user].tolist()) & set(response.items)
        quality = quality_from_scores(
            model.full_scores()[user], model.quality_transform
        )
        quality[known[user]] = 0.0
        expected = greedy_map(LowRankKernel(quality[:, None] * catalog.factors), 4)
        assert response.items == expected


def test_bridge_candidate_pool_restricts_ground_set(bridge_world):
    model, catalog, known = bridge_world
    bridge = RecommenderBridge(
        model, catalog, known_items=known, candidate_pool=15
    )
    responses = bridge.recommend([0, 1], k=4, mode="map")
    for user, response in zip([0, 1], responses):
        quality = bridge.quality_for_user(user).copy()
        quality[known[user]] = 0.0
        pool = set(top_k_indices(quality, 15).tolist())
        assert set(response.items) <= pool


def test_bridge_lru_cache_and_invalidation(bridge_world):
    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known, cache_size=8)
    first = bridge.recommend([0, 1], k=3, mode="map")
    assert bridge.cache_misses == 2 and bridge.cache_hits == 0
    second = bridge.recommend([0, 1], k=3, mode="map")
    assert bridge.cache_hits == 2
    for left, right in zip(first, second):
        assert left.items == right.items
        assert right.cached and not left.cached
    # Callers own their responses: mutating one must not corrupt the cache.
    pristine = list(second[0].items)
    first[0].items.reverse()
    second[0].items.pop()
    assert bridge.recommend([0], k=3, mode="map")[0].items == pristine
    # Seeded samples are cacheable; unseeded ones are not.
    hits_after_mutation_check = bridge.cache_hits
    bridge.recommend([2], k=3, mode="sample", seeds=[7])
    bridge.recommend([2], k=3, mode="sample", seeds=[7])
    assert bridge.cache_hits == hits_after_mutation_check + 1
    hits_before = bridge.cache_hits
    bridge.recommend([2], k=3, mode="sample")
    bridge.recommend([2], k=3, mode="sample")
    assert bridge.cache_hits == hits_before
    # A catalog refresh changes the version, so stale entries miss.
    catalog.refresh(np.array(catalog.factors))
    bridge.recommend([0], k=3, mode="map")
    assert bridge.cache_misses >= 5


def test_bridge_cache_eviction(bridge_world):
    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known, cache_size=2)
    bridge.recommend([0, 1, 2], k=3, mode="map")
    assert len(bridge._cache) == 2  # user 0 evicted
    bridge.recommend([0], k=3, mode="map")
    assert bridge.cache_hits == 0


def test_bridge_cache_thread_safety_under_concurrent_access(bridge_world):
    """Worker threads (the micro-batcher's callers) hammer one bridge:
    every response must stay correct, the LRU must respect its bound,
    and the hit/miss counters must reconcile — no lost updates."""
    import threading

    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known, cache_size=3)
    users = list(range(6))
    expected = {}
    for user in users:
        quality = bridge.quality_for_user(user).copy()
        quality[known[user]] = 0.0
        expected[user] = greedy_map(
            LowRankKernel(quality[:, None] * catalog.factors), 4
        )
    rounds, errors = 25, []

    def hammer(offset: int) -> None:
        try:
            for i in range(rounds):
                user = users[(i + offset) % len(users)]
                response = bridge.recommend([user], k=4, mode="map")[0]
                assert response.items == expected[user], user
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(bridge._cache) <= 3  # eviction bound held under races
    total = 4 * rounds
    assert bridge.cache_hits + bridge.cache_misses == total
    assert bridge.cache_hits > 0  # reuse actually happened


def test_bridge_cache_eviction_under_concurrent_inserts(bridge_world):
    """Concurrent misses that all insert must still evict down to the
    configured size (the lock makes insert + evict atomic)."""
    import threading

    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known, cache_size=2)
    barrier = threading.Barrier(3)

    def insert(user: int) -> None:
        barrier.wait()
        bridge.recommend([user], k=3, mode="map")

    threads = [threading.Thread(target=insert, args=(u,)) for u in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(bridge._cache) == 2
    assert bridge.cache_misses == 3


def test_bridge_cached_responses_carry_catalog_version(bridge_world):
    model, catalog, known = bridge_world
    bridge = RecommenderBridge(model, catalog, known_items=known)
    first = bridge.recommend([0], k=3, mode="map")[0]
    assert first.version == catalog.version
    again = bridge.recommend([0], k=3, mode="map")[0]
    assert again.cached and again.version == first.version


def test_bridge_validation(bridge_world):
    model, catalog, _ = bridge_world
    with pytest.raises(ValueError, match="catalog covers"):
        RecommenderBridge(
            MFRecommender(3, catalog.num_items + 1, dim=4, rng=0), catalog
        )
    with pytest.raises(ValueError, match="candidate_pool"):
        RecommenderBridge(model, catalog, candidate_pool=0)
    with pytest.raises(ValueError, match="cache_size"):
        RecommenderBridge(model, catalog, cache_size=-1)
    # cache_size=0 is a valid "no caching" configuration, not a crash.
    uncached = RecommenderBridge(model, catalog, cache_size=0)
    uncached.recommend([0], k=2, mode="map")
    uncached.recommend([0], k=2, mode="map")
    assert uncached.cache_hits == 0 and len(uncached._cache) == 0
    bridge = RecommenderBridge(model, catalog)
    with pytest.raises(ValueError, match="one seed per user"):
        bridge.recommend([0, 1], k=2, mode="sample", seeds=[1])
