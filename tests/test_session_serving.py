"""Session-aware serving: alpha, history conditioning, constrained MAP.

Three contracts are pinned here:

1. **Bit-parity off-switch** — requests that leave every session field
   at its default (``alpha=1``, no history, no pins/quotas) are served
   through the exact pre-session code paths: identical items, identical
   seeded samples, identical ``log_probability`` floats.
2. **Conditioning math** — the batched dual deflation (``C̃ = PCP``)
   and the sequential primal deflation (``B̃ = B(I − UUᵀ)``) are two
   different routes to the same conditional kernel; both must agree
   with a manually deflated :class:`~repro.dpp.KDPP` oracle.
3. **Constraint semantics** — pins lead the slate and seed the greedy
   state, quotas are satisfied whenever the pool allows, every invalid
   combination raises a request-indexed ``ValueError``, and cached
   funnel pools never resurface already-shown items.
"""

import dataclasses

import numpy as np
import pytest

from repro.dpp import KDPP, LowRankKernel, greedy_map
from repro.retrieval import ExactTopK, FunnelCache, exclusion_token, session_token
from repro.serving import (
    ItemCatalog,
    KDPPServer,
    RecommenderBridge,
    Request,
    Response,
    ServingConfig,
    ServingRuntime,
    Session,
    ShardedCatalog,
    ShardedKDPPServer,
)
from repro.serving.config import resolve_config
from repro.serving.server import extend_pool_for_constraints
from repro.utils.topk import top_k_indices


def _factors(seed: int, m: int, r: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(m, r))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    return diversity


def _quality(seed: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(scale=0.5, size=m))


def _deflated_factors(factors, quality, history):
    """The conditional kernel's factor rows, built independently of the
    engine: zero the shown items' quality, deflate every row by an
    orthonormal basis of the shown items' raw factor rows."""
    base = quality.copy()
    base[np.asarray(history, dtype=np.int64)] = 0.0
    rows = base[:, None] * factors
    shown = factors[np.asarray(history, dtype=np.int64)]
    _, s, vt = np.linalg.svd(shown, full_matrices=False)
    keep = s > max(shown.shape) * np.finfo(np.float64).eps * s[0]
    basis = vt[keep].T  # (r, h')
    return rows - (rows @ basis) @ basis.T


# ----------------------------------------------------------------------
# 1. Off-switch bit-parity
# ----------------------------------------------------------------------
def test_default_session_fields_are_bit_identical():
    factors = _factors(0, 60, 8)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(1, 60)
    plain = [
        Request(quality=quality, k=5, mode="sample", seed=11),
        Request(quality=_quality(2, 60), k=4, mode="map"),
        Request(quality=_quality(3, 60), k=3, mode="topk-rerank"),
        Request(quality=quality, k=3, mode="map", candidates=np.arange(20)),
    ]
    spelled = [
        dataclasses.replace(r, alpha=1.0, history=None, pins=None, quotas=None)
        for r in plain
    ]
    for a, b in zip(server.serve(plain), server.serve(spelled)):
        assert a.items == b.items
        assert a.log_probability == b.log_probability  # bitwise, not approx
        assert a.mode == b.mode and a.k == b.k

    # ... and the batch path still reproduces the manual per-user
    # KDPP.from_factors loop draw for draw (the pre-session oracle).
    served = server.serve([plain[0]])[0]
    kernel = LowRankKernel(quality[:, None] * factors)
    manual = KDPP.from_factors(kernel, 5).sample(np.random.default_rng(11))
    assert served.items == list(manual)


# ----------------------------------------------------------------------
# Alpha
# ----------------------------------------------------------------------
def test_alpha_is_an_exponent_rescale_of_quality():
    factors = _factors(4, 50, 7)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(5, 50)
    for mode, seed in (("map", None), ("sample", 3), ("topk-rerank", None)):
        for alpha in (0.5, 1.7, 3.0):
            via_alpha = server.serve(
                [Request(quality=quality, k=4, mode=mode, seed=seed, alpha=alpha)]
            )[0]
            manual = server.serve(
                [Request(quality=quality ** (1.0 / alpha), k=4, mode=mode, seed=seed)]
            )[0]
            assert via_alpha.items == manual.items, (mode, alpha)
            assert via_alpha.log_probability == manual.log_probability


def test_alpha_extremes_sharpen_and_survive():
    factors = _factors(6, 40, 6)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(7, 40)
    # alpha → 0 sharpens toward pure top-k by quality (0.02 keeps
    # q^(1/alpha) under the overflow clip; past the clip the top
    # qualities tie at the ceiling and diversity breaks the ties).
    sharp = server.serve(
        [Request(quality=quality, k=3, mode="map", alpha=0.02)]
    )[0]
    assert set(sharp.items) == set(top_k_indices(quality, 3).tolist())
    # Huge alpha must not overflow: qualities clip, serving still works.
    flat = server.serve(
        [Request(quality=quality * 1e8, k=3, mode="map", alpha=1e-6)]
    )[0]
    assert len(flat.items) == 3


# ----------------------------------------------------------------------
# 2. History conditioning
# ----------------------------------------------------------------------
def test_history_conditioning_matches_deflated_oracle():
    factors = _factors(8, 50, 9)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(9, 50)
    history = [3, 11, 19]
    deflated = _deflated_factors(factors, quality, history)
    oracle = LowRankKernel(deflated)

    request = Request(quality=quality, k=4, mode="map", history=history)
    batched = server.serve([request])[0]
    sequential = server.serve_sequential([request])[0]
    reference = greedy_map(oracle, 4)
    assert batched.items == sequential.items == list(reference)
    assert not set(batched.items) & set(history)
    expected_lp = KDPP.from_factors(oracle, 4).log_subset_probability(batched.items)
    assert batched.log_probability == pytest.approx(expected_lp, rel=1e-9)
    assert sequential.log_probability == pytest.approx(expected_lp, rel=1e-9)

    sampled = server.serve(
        [Request(quality=quality, k=4, mode="sample", seed=21, history=history)]
    )[0]
    manual = KDPP.from_factors(oracle, 4).sample(np.random.default_rng(21))
    assert sampled.items == list(manual)
    assert not set(sampled.items) & set(history)


def test_history_works_on_candidate_slices_and_duplicated_rows():
    factors = _factors(10, 40, 8)
    # Make two history rows linearly dependent: the rank-revealing basis
    # must deflate one direction, not two.
    factors[12] = 2.0 * factors[5]
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(11, 40)
    request = Request(
        quality=quality,
        k=3,
        mode="map",
        candidates=np.arange(30),
        history=[5, 12, 7],
    )
    batched = server.serve([request])[0]
    sequential = server.serve_sequential([request])[0]
    assert batched.items == sequential.items
    assert not set(batched.items) & {5, 12, 7}
    assert batched.log_probability == pytest.approx(
        sequential.log_probability, rel=1e-9
    )


def test_history_exhausting_rank_stops_early():
    factors = _factors(12, 30, 4)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(13, 30)
    # Conditioning out 3 of 4 rank dimensions leaves at most one pick.
    response = server.serve(
        [Request(quality=quality, k=3, mode="map", history=[0, 1, 2])]
    )[0]
    assert len(response.items) <= 1
    assert response.log_probability is None


# ----------------------------------------------------------------------
# Session helper
# ----------------------------------------------------------------------
def test_session_accumulates_pages_without_repeats():
    factors = _factors(14, 80, 16)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(15, 80)
    session = Session(user=7, alpha=1.2)
    shown: set = set()
    for _ in range(3):
        response = server.serve([session.request(quality, k=5, mode="map")])[0]
        assert not set(response.items) & shown
        shown |= set(response.items)
        session.record(response)
    assert len(session) == len(shown)
    assert sorted(session.shown) == sorted(shown)
    session.reset()
    assert len(session) == 0 and session.history is None


def test_session_window_keeps_old_pages_excluded():
    factors = _factors(16, 80, 6)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(17, 80)
    session = Session(window=4)
    session.record([0, 1, 2, 3, 4, 5])
    request = session.request(quality, k=3, mode="map")
    # Conditioning window = last 4; older items fall back to exclusion.
    assert request.history.tolist() == [2, 3, 4, 5]
    assert sorted(np.asarray(request.exclude).tolist()) == [0, 1]
    response = server.serve([request])[0]
    assert not set(response.items) & {0, 1, 2, 3, 4, 5}
    with pytest.raises(ValueError, match="window"):
        Session(window=0)


# ----------------------------------------------------------------------
# 3. Constrained MAP: pins
# ----------------------------------------------------------------------
def test_pins_lead_the_slate_and_seed_the_greedy_state():
    factors = _factors(18, 50, 8)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(19, 50)
    pins = [30, 41]
    response = server.serve(
        [Request(quality=quality, k=5, mode="map", pins=pins)]
    )[0]
    assert response.items[:2] == pins
    assert len(response.items) == 5
    # The remaining picks are greedy *given* the pins: every later item
    # must differ from what unconstrained greedy would pick only when
    # the pins change the conditional gains — pin parity against the
    # sequential path is the exact check.
    sequential = server.serve_sequential(
        [Request(quality=quality, k=5, mode="map", pins=pins)]
    )[0]
    assert response.items == sequential.items
    expected_lp = KDPP.from_factors(
        LowRankKernel(quality[:, None] * factors), 5
    ).log_subset_probability(response.items)
    assert response.log_probability == pytest.approx(expected_lp, rel=1e-9)


def test_pins_with_history_and_rerank_pool_extension():
    factors = _factors(20, 60, 10)
    server = KDPPServer(ItemCatalog(factors), config=ServingConfig(rerank_pool=10))
    quality = _quality(21, 60)
    # Pin an item that cannot be in the top-10 rerank pool; condition
    # on another low-quality item (guaranteed distinct from the pin).
    order = np.argsort(quality)
    low, shown = int(order[0]), int(order[1])
    request = Request(
        quality=quality, k=4, mode="topk-rerank", pins=[low], history=[shown]
    )
    response = server.serve([request])[0]
    assert response.items[0] == low
    assert shown not in response.items
    assert response.mode == "topk-rerank"
    parity = server.serve_sequential([request])[0]
    assert response.items == parity.items


def test_full_pin_slate_and_pin_quality_guard():
    factors = _factors(22, 30, 6)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(23, 30)
    response = server.serve(
        [Request(quality=quality, k=3, mode="map", pins=[4, 9, 17])]
    )[0]
    assert response.items == [4, 9, 17]
    with pytest.raises(ValueError, match="positive effective quality"):
        zeroed = quality.copy()
        zeroed[4] = 0.0
        server.serve([Request(quality=zeroed, k=3, mode="map", pins=[4])])


# ----------------------------------------------------------------------
# Constrained MAP: quotas
# ----------------------------------------------------------------------
def test_quota_minimums_are_met_when_satisfiable():
    factors = _factors(24, 60, 10)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(25, 60)
    categories = np.arange(60) % 5
    for quotas in ({0: 2}, {1: 1, 3: 2}, {2: 4}):
        request = Request(
            quality=quality, k=4, mode="map", quotas=quotas, categories=categories
        )
        for response in (
            server.serve([request])[0],
            server.serve_sequential([request])[0],
        ):
            assert len(response.items) == 4
            counts = {c: 0 for c in quotas}
            for item in response.items:
                c = int(categories[item])
                if c in counts:
                    counts[c] += 1
            assert all(counts[c] >= need for c, need in quotas.items()), (
                quotas,
                response.items,
            )
    # Quotas must not perturb an unconstrained-equivalent request: a
    # quota the greedy slate satisfies anyway leaves the slate unchanged.
    free = server.serve([Request(quality=quality, k=4, mode="map")])[0]
    satisfied = {int(categories[free.items[0]]): 1}
    quotaed = server.serve(
        [
            Request(
                quality=quality,
                k=4,
                mode="map",
                quotas=satisfied,
                categories=categories,
            )
        ]
    )[0]
    assert quotaed.items == free.items


def test_unsatisfiable_quota_yields_partial_slate():
    factors = _factors(26, 30, 8)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(27, 30)
    categories = np.zeros(30, dtype=np.int64)
    categories[:2] = 7  # only two members of category 7
    response = server.serve(
        [
            Request(
                quality=quality,
                k=5,
                mode="map",
                quotas={7: 3},
                categories=categories,
            )
        ]
    )[0]
    assert len(response.items) < 5
    assert response.log_probability is None
    assert {0, 1} <= set(response.items)  # it took every member it could


def test_pins_and_quotas_compose():
    factors = _factors(28, 50, 10)
    server = KDPPServer(ItemCatalog(factors))
    quality = _quality(29, 50)
    categories = np.arange(50) % 3
    request = Request(
        quality=quality,
        k=5,
        mode="map",
        pins=[9],  # category 0
        quotas={1: 2},
        categories=categories,
    )
    batched = server.serve([request])[0]
    sequential = server.serve_sequential([request])[0]
    assert batched.items == sequential.items
    assert batched.items[0] == 9
    assert sum(1 for i in batched.items if categories[i] == 1) >= 2


# ----------------------------------------------------------------------
# Funnel / cache interaction
# ----------------------------------------------------------------------
def test_sharded_session_pools_respect_history_despite_cache_hits():
    factors = _factors(30, 120, 10)
    catalog = ShardedCatalog(factors, num_shards=3)
    cache = FunnelCache()
    server = ShardedKDPPServer(
        catalog, config=ServingConfig(funnel_width=8, funnel_cache=cache)
    )
    quality = _quality(31, 120)
    page1 = server.serve(
        [Request(quality=quality, k=5, mode="map", user=9)]
    )[0]
    misses_before = cache.stats()["misses"]
    page2_request = Request(
        quality=quality, k=5, mode="map", user=9, history=page1.items
    )
    page2 = server.serve([page2_request])[0]
    # Different session token → page 2 funnels fresh (no false hit) ...
    assert cache.stats()["misses"] == misses_before + 1
    assert not set(page2.items) & set(page1.items)
    # ... and an identical repeat of page 2 is a pure cache hit that
    # still reflects the history-zeroed pool.
    hits_before = cache.stats()["hits"]
    repeat = server.serve([page2_request])[0]
    assert cache.stats()["hits"] == hits_before + 1
    assert repeat.items == page2.items


def test_session_token_separates_history_from_exclusions():
    assert session_token(None, None) is None
    assert session_token([1, 2], None) == exclusion_token([1, 2])
    assert session_token(None, [1, 2]) != exclusion_token([1, 2])
    assert session_token([1], [2]) != session_token([2], [1])
    assert session_token([1], [2]) == session_token([1], [2])


def test_extend_pool_for_constraints_is_deterministic_and_minimal():
    quality = np.array([0.5, 0.9, 0.1, 0.8, 0.0, 0.7, 0.6, 0.2])
    categories = np.array([0, 0, 1, 1, 1, 2, 2, 2])
    pool = np.array([1, 3], dtype=np.int64)
    # Pins append in request order; quota top-ups by descending quality,
    # skipping zero-quality members; already-present items never repeat.
    extended = extend_pool_for_constraints(
        pool, quality, np.array([6, 1]), {1: 2, 2: 1}, categories
    )
    assert extended.tolist() == [1, 3, 6, 2]
    untouched = extend_pool_for_constraints(pool, quality, None, None, None)
    assert untouched is pool


def test_sharded_session_parity_with_monolithic_pool():
    factors = _factors(32, 90, 8)
    catalog = ShardedCatalog(factors, num_shards=3)
    sharded = ShardedKDPPServer(catalog, config=ServingConfig(funnel_width=12))
    mono = KDPPServer(ItemCatalog(factors))
    quality = _quality(33, 90)
    request = Request(
        quality=quality, k=4, mode="sample", seed=5, history=[8, 40], alpha=1.4
    )
    pool = sharded.funnel_pool(request)
    sliced = dataclasses.replace(request, candidates=pool)
    assert sharded.serve([request])[0].items == mono.serve([sliced])[0].items


# ----------------------------------------------------------------------
# Validation: every new error path, request-indexed
# ----------------------------------------------------------------------
def _hetero_batch(quality, bad_request):
    """A batch whose third member (index 2) is the invalid one."""
    return [
        Request(quality=quality, k=2, mode="map"),
        Request(quality=quality, k=2, mode="sample", seed=0),
        bad_request,
    ]


@pytest.mark.parametrize(
    "fields, message",
    [
        ({"alpha": 0.0}, r"request 2: alpha must be a positive finite number"),
        ({"alpha": -1.5}, r"request 2: alpha must be a positive finite number"),
        ({"alpha": float("nan")}, r"request 2: alpha must be a positive"),
        ({"history": [0, 99]}, r"request 2: history ids must be in \[0, 40\)"),
        ({"history": [-1]}, r"request 2: history ids must be in \[0, 40\)"),
        ({"pins": [40]}, r"request 2: pin ids must be in \[0, 40\)"),
        ({"pins": [1, 1]}, r"request 2: pin ids must be unique"),
        ({"pins": [1, 2, 3]}, r"request 2: 3 pins exceed k=2"),
        (
            {"pins": [1], "exclude": [1, 5]},
            r"request 2: pins overlap the exclusion set",
        ),
        (
            {"pins": [1], "history": [1]},
            r"request 2: pins overlap the session history",
        ),
        (
            {"pins": [30], "candidates": np.arange(10)},
            r"request 2: pins must be members of the explicit candidate slice",
        ),
        (
            {"quotas": {0: 1}},
            r"request 2: quotas need a catalog-sized 'categories'",
        ),
        (
            {"quotas": {0: 1}, "categories": np.zeros(5, dtype=np.int64)},
            r"request 2: categories must be an integer array",
        ),
        (
            {"quotas": {0: 0}, "categories": np.zeros(40, dtype=np.int64)},
            r"request 2: quota minimum for category 0 must be positive",
        ),
        (
            {"quotas": {0: 2, 1: 1}, "categories": np.zeros(40, dtype=np.int64)},
            r"request 2: quota minimums sum to 3, exceeding k=2",
        ),
    ],
)
def test_session_validation_errors_are_request_indexed(fields, message):
    factors = _factors(34, 40, 6)
    quality = _quality(35, 40)
    bad = Request(quality=quality, k=2, mode="map", **fields)
    server = KDPPServer(ItemCatalog(factors))
    with pytest.raises(ValueError, match=message):
        server.serve(_hetero_batch(quality, bad))
    # The sharded funnel front end raises the same indexed message.
    sharded = ShardedKDPPServer(ShardedCatalog(factors, num_shards=2))
    with pytest.raises(ValueError, match=message):
        sharded.serve(_hetero_batch(quality, bad))


@pytest.mark.parametrize("mode", ["sample"])
@pytest.mark.parametrize(
    "fields, message",
    [
        ({"pins": [1]}, r"request 2: pins require a MAP mode"),
        (
            {"quotas": {0: 1}, "categories": None},
            r"request 2: quotas require a MAP mode",
        ),
    ],
)
def test_sample_mode_rejects_map_only_constraints(mode, fields, message):
    factors = _factors(36, 40, 6)
    quality = _quality(37, 40)
    server = KDPPServer(ItemCatalog(factors))
    bad = Request(quality=quality, k=2, mode=mode, seed=1, **fields)
    with pytest.raises(ValueError, match=message):
        server.serve(_hetero_batch(quality, bad))


def test_request_validate_is_directly_callable():
    quality = np.ones(10)
    Request(quality=quality, k=2, mode="map", alpha=2.0).validate(10)
    with pytest.raises(ValueError, match=r"request 0: alpha"):
        Request(quality=quality, k=2, mode="map", alpha=0).validate(10)
    with pytest.raises(ValueError, match=r"request 4: history"):
        Request(quality=quality, k=2, mode="map", history=[11]).validate(
            10, index=4
        )


# ----------------------------------------------------------------------
# ServingConfig + deprecation shims
# ----------------------------------------------------------------------
def test_serving_config_validates_and_replaces():
    config = ServingConfig()
    assert config.rerank_pool == 100 and config.funnel_width == 32
    assert config.replace(max_batch=4).max_batch == 4
    for bad in (
        {"rerank_pool": 0},
        {"funnel_width": 0},
        {"max_batch": 0},
        {"max_wait": -1.0},
        {"workers": -1},
    ):
        with pytest.raises(ValueError):
            ServingConfig(**bad)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.rerank_pool = 5


def test_legacy_kwargs_warn_and_config_conflicts_raise():
    factors = _factors(38, 40, 6)
    catalog = ItemCatalog(factors)
    sharded_catalog = ShardedCatalog(factors, num_shards=2)
    with pytest.warns(DeprecationWarning, match="KDPPServer"):
        server = KDPPServer(catalog, rerank_pool=17)
    assert server.rerank_pool == 17 and server.config.rerank_pool == 17
    with pytest.warns(DeprecationWarning, match="ShardedKDPPServer"):
        sharded = ShardedKDPPServer(sharded_catalog, funnel_width=9)
    assert sharded.funnel_width == 9
    with pytest.warns(DeprecationWarning, match="ServingRuntime"):
        runtime = ServingRuntime(catalog, workers=0)
    runtime.close()
    with pytest.raises(ValueError, match="not both"):
        KDPPServer(catalog, rerank_pool=17, config=ServingConfig())
    with pytest.raises(ValueError, match="not both"):
        resolve_config(ServingConfig(), {"workers": 2}, "Owner")
    # Old validation error text still reachable through the shim.
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="funnel_width must be positive"):
            ShardedKDPPServer(sharded_catalog, funnel_width=0)


def test_runtime_from_config_builds_the_whole_stack():
    factors = _factors(39, 60, 6)
    cache = FunnelCache()
    config = ServingConfig(
        funnel_width=10, workers=0, source=ExactTopK(), funnel_cache=cache
    )
    with ServingRuntime.from_config(
        ShardedCatalog(factors, num_shards=2), config
    ) as runtime:
        assert runtime.config is config
        assert runtime.server.funnel_cache is cache
        future = runtime.submit(
            Request(quality=_quality(40, 60), k=3, mode="map", user=1)
        )
        runtime.flush()
        assert len(future.result().items) == 3
    # Monolithic catalogs still reject funnel plug-ins.
    with pytest.raises(ValueError, match="sharded"):
        ServingRuntime.from_config(
            ItemCatalog(factors), ServingConfig(source=ExactTopK())
        )


def test_response_is_frozen_and_restamping_builds_new_instances():
    factors = _factors(41, 50, 6)
    quality = _quality(42, 50)
    server = ShardedKDPPServer(ShardedCatalog(factors, num_shards=2))
    response = server.serve(
        [Request(quality=quality, k=3, mode="topk-rerank")]
    )[0]
    assert response.mode == "topk-rerank"
    with pytest.raises(dataclasses.FrozenInstanceError):
        response.mode = "map"
    with pytest.raises(dataclasses.FrozenInstanceError):
        response.items = []


# ----------------------------------------------------------------------
# Bridge integration
# ----------------------------------------------------------------------
def test_bridge_alpha_is_part_of_the_cache_key():
    from repro.models import MFRecommender

    model = MFRecommender(4, 30, dim=5, rng=0)
    factors = _factors(43, 30, 5)
    bridge = RecommenderBridge(model, ItemCatalog(factors))
    sharp = bridge.recommend([0], k=3, alpha=0.2)[0]
    flat = bridge.recommend([0], k=3, alpha=5.0)[0]
    again = bridge.recommend([0], k=3, alpha=0.2)[0]
    assert again.cached and again.items == sharp.items
    assert bridge.cache_hits == 1  # alpha=5.0 was a distinct key
    assert sharp.items != flat.items or sharp.log_probability != flat.log_probability


def test_bridge_build_request_threads_session_fields():
    from repro.models import MFRecommender

    model = MFRecommender(4, 30, dim=5, rng=1)
    factors = _factors(44, 30, 5)
    bridge = RecommenderBridge(
        model, ItemCatalog(factors), candidate_pool=8
    )
    request = bridge.build_request(
        1, k=3, mode="map", alpha=1.5, history=[2, 4], pins=[7]
    )
    assert request.alpha == 1.5
    assert list(request.history) == [2, 4]
    assert 7 in np.asarray(request.candidates).tolist()
    assert not {2, 4} & set(np.asarray(request.candidates).tolist())
    response = bridge.server.serve([request])[0]
    assert response.items[0] == 7
    assert not {2, 4} & set(response.items)
