"""Behavioral tests pinning the baseline criteria's ranking semantics.

Beyond running without error (test_losses.py), these verify each baseline
*orders* models the way its paper intends — the property the comparison
tables depend on.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, optim
from repro.data import movielens_like
from repro.losses import BPRCriterion, Set2SetRankCriterion, SetRankCriterion
from repro.models import MFRecommender


@pytest.fixture(scope="module")
def world():
    dataset = movielens_like(scale=0.35).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    return dataset, split


def _train(model, criterion, split, steps=40, lr=0.05, seed=0):
    rng = np.random.default_rng(seed)
    sampler = criterion.make_sampler(split)
    optimizer = optim.Adam(model.parameters(), lr=lr)
    for _ in range(steps):
        batch = sampler.instances(rng)[:32]
        loss = criterion.batch_loss(model, model.representations(), batch)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return model


@pytest.mark.parametrize(
    "criterion_factory",
    [BPRCriterion, lambda: SetRankCriterion(num_negatives=4), lambda: Set2SetRankCriterion(k=3, n=3)],
)
def test_criterion_ranks_train_items_above_unseen(world, criterion_factory):
    """After training, observed items outrank unobserved ones on average."""
    dataset, split = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0)
    criterion = criterion_factory()
    _train(model, criterion, split)
    scores = model.full_scores()
    gaps = []
    for user in range(dataset.num_users):
        train = np.fromiter(split.train_set(user), dtype=np.int64)
        if train.shape[0] == 0:
            continue
        unseen = np.setdiff1d(np.arange(dataset.num_items), train)
        gaps.append(scores[user, train].mean() - scores[user, unseen].mean())
    assert np.mean(gaps) > 0.2, criterion.name


def test_bpr_loss_decreases_with_margin():
    """-log sigmoid(margin): bigger positive-negative margin, lower loss."""
    from repro.autodiff import functional as F

    small = -F.log_sigmoid(Tensor(np.array([0.1]))).item()
    large = -F.log_sigmoid(Tensor(np.array([3.0]))).item()
    assert large < small


def test_setrank_loss_decreases_with_more_separated_positive(world):
    """SetRank's permutation probability increases when the positive
    pulls ahead of its negative set."""
    dataset, split = world
    criterion = SetRankCriterion(num_negatives=3)
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=1)
    batch = [(0, 1, np.array([2, 3, 4]))]
    base = criterion.batch_loss(model, model.representations(), batch).item()
    # Push item 1 toward user 0's direction.
    model.item_embedding.weight.data[1] += model.user_embedding.weight.data[0] * 20
    better = criterion.batch_loss(model, model.representations(), batch).item()
    assert better < base


def test_s2srank_margin_increases_set_level_pressure(world):
    """A larger set-to-set margin strictly increases the loss."""
    dataset, split = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=2)
    batch = Set2SetRankCriterion(k=3, n=3).make_sampler(split).instances(
        np.random.default_rng(3)
    )[:8]
    small = Set2SetRankCriterion(k=3, n=3, margin=0.1).batch_loss(
        model, model.representations(), batch
    )
    large = Set2SetRankCriterion(k=3, n=3, margin=2.0).batch_loss(
        model, model.representations(), batch
    )
    assert large.item() > small.item()


def test_s2srank_weights_compose_linearly(world):
    """Component weights scale their terms (sanity of the 3-part loss)."""
    dataset, split = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=3)
    batch = Set2SetRankCriterion(k=3, n=3).make_sampler(split).instances(
        np.random.default_rng(4)
    )[:6]
    reprs = model.representations()
    full = Set2SetRankCriterion(k=3, n=3).batch_loss(model, reprs, batch).item()
    item_only = Set2SetRankCriterion(
        k=3, n=3, item_set_weight=0.0, set_weight=0.0
    ).batch_loss(model, reprs, batch).item()
    set_only = Set2SetRankCriterion(
        k=3, n=3, item_weight=0.0, item_set_weight=0.0
    ).batch_loss(model, reprs, batch).item()
    middle_only = Set2SetRankCriterion(
        k=3, n=3, item_weight=0.0, set_weight=0.0
    ).batch_loss(model, reprs, batch).item()
    assert np.isclose(full, item_only + set_only + middle_only, rtol=1e-8)
