"""Tests for the synthetic generators and instance samplers."""

import numpy as np
import pytest

from repro.data import (
    GroundSetSampler,
    OneVsSetSampler,
    PairSampler,
    PointwiseSampler,
    SetPairSampler,
    SyntheticConfig,
    anime_like,
    beauty_like,
    generate_dataset,
    movielens_like,
)


def test_generator_determinism():
    a = generate_dataset(SyntheticConfig(num_users=30, num_items=40, seed=7))
    b = generate_dataset(SyntheticConfig(num_users=30, num_items=40, seed=7))
    assert np.array_equal(a.interactions, b.interactions)
    assert a.item_categories == b.item_categories


def test_generator_validation():
    with pytest.raises(ValueError):
        generate_dataset(SyntheticConfig(num_users=0))


def test_presets_preserve_paper_axes():
    beauty = beauty_like(scale=0.4)
    ml = movielens_like(scale=0.4)
    anime = anime_like(scale=0.4)
    # Category richness ordering: Beauty > Anime > ML (213 > 43 > 18).
    assert beauty.num_categories > anime.num_categories > ml.num_categories
    # Density ordering: Beauty < Anime < ML.
    assert beauty.density < anime.density < ml.density


def test_items_are_multilabel_where_configured():
    beauty = beauty_like(scale=0.4)
    label_counts = [len(c) for c in beauty.item_categories]
    assert max(label_counts) >= 2  # multi-label items exist
    assert min(label_counts) >= 1  # every item has a primary category


def test_timestamps_give_sticky_category_sequences():
    # With high stickiness, consecutive items share categories far more
    # often than random pairs would.
    config = SyntheticConfig(
        num_users=40, num_items=80, num_categories=20,
        sequence_stickiness=0.9, mean_interactions=20, seed=3,
    )
    ds = generate_dataset(config)
    histories = ds.user_histories()
    adjacent_same, adjacent_total = 0, 0
    for history in histories:
        for a, b in zip(history[:-1], history[1:]):
            adjacent_total += 1
            if ds.item_categories[int(a)] & ds.item_categories[int(b)]:
                adjacent_same += 1
    rng = np.random.default_rng(0)
    random_same, random_total = 0, 2000
    for _ in range(random_total):
        i, j = rng.integers(0, ds.num_items, size=2)
        if ds.item_categories[int(i)] & ds.item_categories[int(j)]:
            random_same += 1
    assert adjacent_same / adjacent_total > random_same / random_total + 0.1


def _prepared_split(seed=0):
    ds = movielens_like(scale=0.35).filter_min_interactions(5)
    return ds, ds.split(np.random.default_rng(seed))


def test_ground_set_sampler_validation():
    _, split = _prepared_split()
    with pytest.raises(ValueError):
        GroundSetSampler(split, k=1, n=5)
    with pytest.raises(ValueError):
        GroundSetSampler(split, k=5, n=0)
    with pytest.raises(ValueError):
        GroundSetSampler(split, mode="X")


def test_ground_set_instances_shape_and_exclusion():
    _, split = _prepared_split()
    sampler = GroundSetSampler(split, k=4, n=3, mode="S")
    for instance in sampler.instances(np.random.default_rng(1)):
        assert instance.k == 4 and instance.n == 3
        assert instance.ground_set.shape == (7,)
        targets = set(map(int, instance.targets))
        assert targets <= split.train_set(instance.user)
        negatives = set(map(int, instance.negatives))
        assert not negatives & split.known_set(instance.user)
        assert not negatives & targets


def test_s_mode_covers_every_training_item():
    _, split = _prepared_split()
    sampler = GroundSetSampler(split, k=5, n=5, mode="S")
    covered: dict[int, set] = {}
    for instance in sampler.instances(np.random.default_rng(2)):
        covered.setdefault(instance.user, set()).update(map(int, instance.targets))
    for user in sampler.eligible_users:
        assert covered[int(user)] == split.train_set(int(user))


def test_s_mode_windows_follow_temporal_order():
    _, split = _prepared_split()
    sampler = GroundSetSampler(split, k=3, n=2, mode="S")
    instances = sampler.instances(np.random.default_rng(3))
    by_user: dict[int, list] = {}
    for inst in instances:
        by_user.setdefault(inst.user, []).append(inst.targets)
    user, windows = next(iter(by_user.items()))
    train = list(map(int, split.train[user]))
    positions = [train.index(int(t)) for t in windows[0]]
    assert positions == sorted(positions)  # window preserves order


def test_r_mode_differs_from_s_mode_but_same_budget():
    _, split = _prepared_split()
    s_instances = GroundSetSampler(split, k=4, n=4, mode="S").instances(
        np.random.default_rng(4)
    )
    r_instances = GroundSetSampler(split, k=4, n=4, mode="R").instances(
        np.random.default_rng(4)
    )
    assert len(s_instances) == len(r_instances)
    s_sets = {(inst.user, tuple(sorted(map(int, inst.targets)))) for inst in s_instances}
    r_sets = {(inst.user, tuple(sorted(map(int, inst.targets)))) for inst in r_instances}
    assert s_sets != r_sets


def test_instance_budget_not_greater_than_bpr():
    # ceil(|train| / k) set instances vs |train| BPR pairs.
    _, split = _prepared_split()
    ground = GroundSetSampler(split, k=5, n=5).instances(np.random.default_rng(5))
    pairs = PairSampler(split).instances(np.random.default_rng(5))
    assert len(ground) <= len(pairs)


def test_pair_sampler_negatives_unobserved():
    _, split = _prepared_split()
    for user, positive, negative in PairSampler(split).instances(np.random.default_rng(6)):
        assert positive in split.train_set(user)
        assert negative not in split.known_set(user)


def test_pointwise_sampler_label_ratio():
    _, split = _prepared_split()
    sampler = PointwiseSampler(split, negative_ratio=2)
    instances = sampler.instances(np.random.default_rng(7))
    positives = sum(1 for _, _, label in instances if label == 1.0)
    negatives = sum(1 for _, _, label in instances if label == 0.0)
    assert negatives == 2 * positives
    with pytest.raises(ValueError):
        PointwiseSampler(split, negative_ratio=0)


def test_one_vs_set_sampler():
    _, split = _prepared_split()
    sampler = OneVsSetSampler(split, num_negatives=4)
    for user, positive, negatives in sampler.instances(np.random.default_rng(8)):
        assert positive in split.train_set(user)
        assert negatives.shape == (4,)
        assert not set(map(int, negatives)) & split.known_set(user)


def test_set_pair_sampler_budget_and_shapes():
    _, split = _prepared_split()
    sampler = SetPairSampler(split, k=4, n=3)
    instances = sampler.instances(np.random.default_rng(9))
    ground = GroundSetSampler(split, k=4, n=3).instances(np.random.default_rng(9))
    assert len(instances) == len(ground)
    for user, positives, negatives in instances:
        assert positives.shape == (4,) and negatives.shape == (3,)
