"""Tests for the training harness and grid search."""

import numpy as np
import pytest

from repro.data import movielens_like
from repro.dpp import category_jaccard_kernel
from repro.losses import BPRCriterion, make_lkp_variant
from repro.models import MFRecommender
from repro.train import TrainConfig, Trainer, grid_search


@pytest.fixture(scope="module")
def world():
    dataset = movielens_like(scale=0.35).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    kernel = category_jaccard_kernel(dataset.item_categories, scale=0.8, floor=0.2)
    diag = np.sqrt(np.diagonal(kernel))
    return dataset, split, kernel / np.outer(diag, diag)


def test_config_validation():
    with pytest.raises(ValueError):
        TrainConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainConfig(batch_size=0)
    with pytest.raises(ValueError):
        TrainConfig(monitor="XX@5")
    # Monitor cutoff auto-added to cutoffs.
    config = TrainConfig(monitor="Nd@7", cutoffs=(5,))
    assert 7 in config.cutoffs


def test_training_reduces_loss(world):
    dataset, split, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=0)
    trainer = Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=10, lr=0.05, batch_size=64, patience=0, seed=1),
    )
    result = trainer.fit()
    losses = result.losses()
    assert losses[-1] < losses[0]
    assert result.epochs_run == 10


def test_validation_tracking_and_best_epoch(world):
    dataset, split, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=1)
    trainer = Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=8, lr=0.05, batch_size=64, patience=0, seed=2),
    )
    result = trainer.fit()
    assert 1 <= result.best_epoch <= 8
    assert result.best_value > 0
    assert result.epochs_to_best == result.best_epoch
    validated = [r for r in result.history if r.val_metrics is not None]
    assert len(validated) == 8


def test_early_stopping_halts_training(world):
    dataset, split, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=2)
    trainer = Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=200, lr=0.05, batch_size=64, patience=3, seed=3),
    )
    result = trainer.fit()
    assert result.epochs_run < 200


def test_best_state_restored_after_training(world):
    dataset, split, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=3)
    trainer = Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=12, lr=0.1, batch_size=64, patience=0, seed=4),
    )
    result = trainer.fit()
    from repro.eval import evaluate_model

    final_val = evaluate_model(model, split, cutoffs=(5,), target="val")
    assert np.isclose(final_val["Nd@5"], result.best_value, rtol=1e-9)


def test_epoch_callback_receives_epoch_zero(world):
    dataset, split, _ = world
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=4)
    seen = []
    trainer = Trainer(
        model, BPRCriterion(), split,
        TrainConfig(epochs=3, lr=0.05, batch_size=64, patience=0, seed=5),
        epoch_callback=lambda epoch, m: seen.append(epoch),
    )
    trainer.fit()
    assert seen == [0, 1, 2, 3]


def test_lkp_end_to_end_training_improves_over_init(world):
    dataset, split, kernel = world
    from repro.eval import evaluate_model

    model = MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=5)
    initial = evaluate_model(model, split, cutoffs=(5,), target="test")["Nd@5"]
    criterion = make_lkp_variant("NPS", diversity_kernel=kernel, k=3, n=3)
    trainer = Trainer(
        model, criterion, split,
        TrainConfig(epochs=25, lr=0.1, batch_size=32, patience=0, seed=6),
    )
    trainer.fit()
    final = trainer.evaluate(target="test")["Nd@5"]
    assert final > initial


def test_grid_search_selects_best_point(world):
    dataset, split, _ = world
    base = TrainConfig(epochs=5, batch_size=64, patience=0, seed=7)
    best, trace = grid_search(
        model_factory=lambda: MFRecommender(dataset.num_users, dataset.num_items, dim=8, rng=6),
        criterion_factory=BPRCriterion,
        split=split,
        base_config=base,
        grid={"lr": [0.001, 0.05]},
    )
    assert len(trace) == 2
    assert best.value == max(point.value for point in trace)
    assert best.params["lr"] in (0.001, 0.05)


def test_grid_search_validation(world):
    dataset, split, _ = world
    base = TrainConfig(epochs=2)
    with pytest.raises(ValueError):
        grid_search(lambda: None, BPRCriterion, split, base, {})
    with pytest.raises(ValueError):
        grid_search(lambda: None, BPRCriterion, split, base, {"bogus": [1]})
