"""Tests for the utility modules (rng, topk, timing)."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    Stopwatch,
    ensure_rng,
    latency_percentiles,
    rank_of_items,
    seeded_children,
    spawn,
    timed,
    top_k_indices,
)


def test_ensure_rng_accepts_all_forms():
    assert isinstance(ensure_rng(None), np.random.Generator)
    assert isinstance(ensure_rng(42), np.random.Generator)
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g


def test_ensure_rng_seed_determinism():
    a = ensure_rng(7).integers(0, 1000, size=5)
    b = ensure_rng(7).integers(0, 1000, size=5)
    assert np.array_equal(a, b)


def test_spawn_children_independent_and_reproducible():
    children_a = spawn(np.random.default_rng(1), 3)
    children_b = spawn(np.random.default_rng(1), 3)
    for a, b in zip(children_a, children_b):
        assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))
    # Different children produce different streams.
    fresh = spawn(np.random.default_rng(1), 2)
    assert not np.array_equal(fresh[0].integers(0, 100, 5), fresh[1].integers(0, 100, 5))


def test_seeded_children_named():
    children = seeded_children(3, ["data", "model"])
    assert set(children) == {"data", "model"}


def test_top_k_basic_ordering():
    scores = np.array([0.1, 0.9, 0.5, 0.7])
    assert top_k_indices(scores, 2).tolist() == [1, 3]
    assert top_k_indices(scores, 10).tolist() == [1, 3, 2, 0]


def test_top_k_exclusion():
    scores = np.array([0.9, 0.8, 0.7, 0.6])
    top = top_k_indices(scores, 2, exclude=np.array([0, 1]))
    assert top.tolist() == [2, 3]


def test_top_k_all_excluded():
    scores = np.array([1.0, 2.0])
    assert top_k_indices(scores, 2, exclude=np.array([0, 1])).shape == (0,)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=1, max_size=30, unique=True), st.integers(1, 10))
def test_top_k_matches_argsort(values, k):
    scores = np.array(values)
    expected = np.argsort(-scores)[: min(k, len(values))]
    assert top_k_indices(scores, k).tolist() == expected.tolist()


def test_rank_of_items():
    scores = np.array([0.2, 0.9, 0.5])
    ranks = rank_of_items(scores, np.array([1, 0, 2]))
    assert ranks.tolist() == [0, 2, 1]


def test_stopwatch_accumulates():
    watch = Stopwatch()
    watch.start()
    time.sleep(0.01)
    first = watch.stop()
    assert first > 0
    watch.start()
    time.sleep(0.01)
    assert watch.stop() > first
    with pytest.raises(RuntimeError):
        watch.stop()
    watch.start()
    with pytest.raises(RuntimeError):
        watch.start()


def test_timed_context():
    with timed() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.01


def test_latency_percentiles_interpolates():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    out = latency_percentiles(samples, (0, 50, 99, 100))
    assert out["p0"] == 1.0 and out["p100"] == 5.0
    assert out["p50"] == 3.0
    assert np.isclose(out["p99"], 4.96)
    # order-independent
    assert latency_percentiles(samples[::-1], (50,)) == {"p50": 3.0}


def test_latency_percentiles_validation():
    with pytest.raises(ValueError):
        latency_percentiles([])
    with pytest.raises(ValueError):
        latency_percentiles([1.0], (101,))
    assert latency_percentiles([7.0])["p99"] == 7.0
    assert "p99.9" in latency_percentiles([1.0, 2.0], (99.9,))
